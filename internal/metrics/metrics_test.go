package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	v := []float64{5, 1, 3, 2, 4}
	cases := []struct{ p, want float64 }{
		{0, 1}, {20, 1}, {40, 2}, {50, 3}, {90, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := Percentile(v, c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) != 0")
	}
	if Median(v) != 3 {
		t.Error("Median != 3")
	}
}

func TestPercentilesMatchesPercentile(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	v := make([]float64, 101)
	for i := range v {
		v[i] = r.Float64() * 100
	}
	ps := []float64{0, 10, 25, 50, 75, 90, 99, 100}
	got := Percentiles(v, ps...)
	if len(got) != len(ps) {
		t.Fatalf("len = %d, want %d", len(got), len(ps))
	}
	for i, p := range ps {
		if want := Percentile(v, p); got[i] != want {
			t.Errorf("Percentiles[%v] = %v, Percentile = %v", p, got[i], want)
		}
	}
	// Input must not be mutated (Percentiles sorts a copy).
	if v[0] != func() float64 { r2 := rand.New(rand.NewSource(7)); return r2.Float64() * 100 }() {
		t.Error("Percentiles mutated its input")
	}
	for i, q := range Percentiles(nil, 50, 90) {
		if q != 0 {
			t.Errorf("Percentiles(nil)[%d] = %v", i, q)
		}
	}
}

func TestPercentileSorted(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ p, want float64 }{{0, 1}, {50, 3}, {100, 5}, {-10, 1}, {110, 5}} {
		if got := PercentileSorted(sorted, c.p); got != c.want {
			t.Errorf("PercentileSorted(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if PercentileSorted(nil, 50) != 0 {
		t.Error("PercentileSorted(nil) != 0")
	}
}

func TestCV(t *testing.T) {
	if CV([]float64{2, 2, 2}) != 0 {
		t.Error("CV of constant != 0")
	}
	if got := CV([]float64{1, 3}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("CV = %v, want 0.5", got)
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(100, 45); got != 55 {
		t.Errorf("Reduction = %v, want 55", got)
	}
	if got := Reduction(0, 45); got != 0 {
		t.Errorf("Reduction with zero baseline = %v, want 0", got)
	}
	if got := Reduction(50, 100); got != -100 {
		t.Errorf("negative reduction = %v, want -100", got)
	}
	r := Reductions([]float64{10, 20}, []float64{5, 10})
	if r[0] != 50 || r[1] != 50 {
		t.Errorf("Reductions = %v", r)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].X != 1 || math.Abs(pts[0].P-1.0/3) > 1e-12 {
		t.Errorf("first point = %+v", pts[0])
	}
	if pts[2].X != 3 || pts[2].P != 1 {
		t.Errorf("last point = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Error("CDF(nil) != nil")
	}
	if got := CDFAt([]float64{1, 2, 3, 4}, 2.5); got != 0.5 {
		t.Errorf("CDFAt = %v, want 0.5", got)
	}
	if CDFAt(nil, 1) != 0 {
		t.Error("CDFAt(nil) != 0")
	}
}

func TestBucket(t *testing.T) {
	bounds := []float64{0.2, 0.5, 1.0}
	cases := []struct {
		v    float64
		want int
	}{
		{0.1, 0}, {0.2, 1}, {0.4, 1}, {0.9, 2}, {1.0, 3}, {5, 3},
	}
	for _, c := range cases {
		if got := Bucket(c.v, bounds); got != c.want {
			t.Errorf("Bucket(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestGroupMeans(t *testing.T) {
	keys := []float64{0.1, 0.3, 0.3, 2.0}
	values := []float64{10, 20, 40, 70}
	means, fracs := GroupMeans(keys, values, []float64{0.2, 0.5, 1.0})
	if means[0] != 10 || means[1] != 30 || means[2] != 0 || means[3] != 70 {
		t.Errorf("means = %v", means)
	}
	if fracs[0] != 0.25 || fracs[1] != 0.5 || fracs[2] != 0 || fracs[3] != 0.25 {
		t.Errorf("fractions = %v", fracs)
	}
}

func TestPercentileMonotonicProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, 1+rng.Intn(50))
		for i := range v {
			v[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			x := Percentile(v, p)
			if x < prev {
				return false
			}
			prev = x
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAtMatchesCDFProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := make([]float64, 1+rng.Intn(40))
		for i := range v {
			v[i] = rng.Float64() * 10
		}
		pts := CDF(v)
		for _, pt := range pts {
			if math.Abs(CDFAt(v, pt.X)-pt.P) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
