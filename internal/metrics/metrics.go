// Package metrics provides the statistics the evaluation reports:
// average response time, slowdown, percentiles, CDFs, coefficient of
// variation, and the "reduction vs baseline" percentages the paper's
// figures are plotted in.
package metrics

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of v (0 for empty input).
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of v using
// nearest-rank on a sorted copy. Empty input yields 0. For several
// percentiles of the same data use Percentiles, which sorts once.
func Percentile(v []float64, p float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	return PercentileSorted(s, p)
}

// PercentileSorted is Percentile over data already sorted ascending; it
// neither copies nor re-sorts.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Percentiles returns the requested percentiles of v, sorting the data
// once — use this for the p50/p95/p99 triples exporters emit instead of
// repeated Percentile calls, each of which copies and sorts.
func Percentiles(v []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	if len(v) == 0 {
		return out
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	for i, p := range ps {
		out[i] = PercentileSorted(s, p)
	}
	return out
}

// Median returns the 50th percentile.
func Median(v []float64) float64 { return Percentile(v, 50) }

// CV returns the coefficient of variation (stddev/mean), 0 when the
// mean is 0.
func CV(v []float64) float64 {
	m := Mean(v)
	if m == 0 || len(v) == 0 {
		return 0
	}
	ss := 0.0
	for _, x := range v {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(v))) / m
}

// Reduction returns the percentage reduction of value relative to
// baseline: 100·(baseline−value)/baseline. Positive means value is an
// improvement (smaller). Zero baseline yields 0.
func Reduction(baseline, value float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - value) / baseline
}

// Reductions applies Reduction pairwise.
func Reductions(baseline, value []float64) []float64 {
	out := make([]float64, len(value))
	for i := range value {
		out[i] = Reduction(baseline[i], value[i])
	}
	return out
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // cumulative probability in (0, 1]
}

// CDF returns the empirical CDF of v (sorted ascending).
func CDF(v []float64) []CDFPoint {
	if len(v) == 0 {
		return nil
	}
	s := make([]float64, len(v))
	copy(s, v)
	sort.Float64s(s)
	out := make([]CDFPoint, len(s))
	for i, x := range s {
		out[i] = CDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return out
}

// CDFAt evaluates an empirical CDF at x: the fraction of samples ≤ x.
func CDFAt(v []float64, x float64) float64 {
	if len(v) == 0 {
		return 0
	}
	n := 0
	for _, s := range v {
		if s <= x {
			n++
		}
	}
	return float64(n) / float64(len(v))
}

// Bucket assigns value to the first bucket whose upper bound it does not
// exceed; bounds must be ascending and the return is the bucket index in
// [0, len(bounds)] (the last index means "greater than every bound").
// This is how Fig. 12 buckets jobs by ratio/skew/error.
func Bucket(value float64, bounds []float64) int {
	for i, b := range bounds {
		if value < b {
			return i
		}
	}
	return len(bounds)
}

// GroupMeans buckets values by Bucket(keys[i], bounds) and returns the
// mean of each bucket plus the fraction of samples per bucket — the two
// bar series of each Fig. 12 panel.
func GroupMeans(keys, values []float64, bounds []float64) (means, fractions []float64) {
	n := len(bounds) + 1
	sums := make([]float64, n)
	counts := make([]int, n)
	for i := range keys {
		b := Bucket(keys[i], bounds)
		sums[b] += values[i]
		counts[b]++
	}
	means = make([]float64, n)
	fractions = make([]float64, n)
	total := len(keys)
	for i := 0; i < n; i++ {
		if counts[i] > 0 {
			means[i] = sums[i] / float64(counts[i])
		}
		if total > 0 {
			fractions[i] = float64(counts[i]) / float64(total)
		}
	}
	return means, fractions
}
