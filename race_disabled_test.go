//go:build !race

package tetrium

const raceEnabled = false
