package tetrium

// This file provides one testing.B benchmark per table and figure of the
// paper's evaluation (§6). Each benchmark regenerates its experiment and
// reports the headline quantity as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// doubles as a smoke reproduction of the whole evaluation. Benchmarks
// default to the reduced "quick" experiment sizes so the suite finishes
// in minutes; set TETRIUM_BENCH_FULL=1 for the full sizes recorded in
// EXPERIMENTS.md (cmd/tetrium-bench prints the complete tables).

import (
	"os"
	"strconv"
	"strings"
	"testing"

	"tetrium/internal/exp"
)

func benchOptions() exp.Options {
	return exp.Options{
		Quick: os.Getenv("TETRIUM_BENCH_FULL") == "",
		Seed:  1,
	}
}

// cellPct parses "12.3%" into 12.3; used to surface table cells as
// benchmark metrics.
func cellPct(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func cellF(b *testing.B, cell string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		b.Fatalf("cell %q: %v", cell, err)
	}
	return v
}

func BenchmarkFig2Heterogeneity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig2(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(cellF(b, last[1]), "compute-spread-x")
		b.ReportMetric(cellF(b, last[2]), "bw-spread-x")
	}
}

func BenchmarkFig3WorkedExample(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig3(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range t.Rows {
			if r[0] == "tetrium (LP)" {
				b.ReportMetric(cellF(b, r[5]), "tetrium-total-s")
			}
			if r[0] == "iridium (paper)" {
				b.ReportMetric(cellF(b, r[5]), "iridium-total-s")
			}
		}
	}
}

func BenchmarkSec22JobOrdering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Sec22(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellF(b, t.Rows[0][3]), "good-order-avg-s")
		b.ReportMetric(cellF(b, t.Rows[1][3]), "bad-order-avg-s")
	}
}

func BenchmarkFig5ResponseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig5, _, err := exp.Fig56(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellPct(b, fig5.Rows[0][1]), "tpcds8-vs-inplace-%")
		b.ReportMetric(cellPct(b, fig5.Rows[0][2]), "tpcds8-vs-iridium-%")
	}
}

func BenchmarkFig6Slowdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, fig6, err := exp.Fig56(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellPct(b, fig6.Rows[0][1]), "tpcds8-vs-inplace-%")
	}
}

func BenchmarkFig7SchedulerOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig7(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellF(b, t.Rows[len(t.Rows)-1][1]), "largest-instance-ms")
	}
}

func BenchmarkFig8Ablations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, _, err := exp.Fig8(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellPct(b, a.Rows[0][1]), "tetrium-vs-inplace-%")
		b.ReportMetric(cellPct(b, a.Rows[0][2]), "tetrium-vs-central-%")
	}
}

func BenchmarkFig9Ordering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig9(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellPct(b, t.Rows[0][2]), "remote+longest-%")
	}
}

func BenchmarkFig10WANBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig10ab(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellPct(b, t.Rows[0][2]), "rho0-wan-saving-%")
	}
}

func BenchmarkFig10cFairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig10c(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellPct(b, t.Rows[len(t.Rows)-1][1]), "eps1-gain-%")
	}
}

func BenchmarkFig11Dynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig11(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellPct(b, t.Rows[0][1]), "smallest-drop-smallest-k-%")
	}
}

func BenchmarkFig12GainBuckets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := exp.Fig12(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		// Panel (a), highest intermediate/input bucket.
		last := tabs[0].Rows[len(tabs[0].Rows)-1]
		b.ReportMetric(cellF(b, last[2]), "high-ratio-gain-%")
	}
}

func BenchmarkTetrisComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.TetrisCompare(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellPct(b, t.Rows[0][1]), "avg-reduction-%")
	}
}

func BenchmarkSkewSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.SkewSweep(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		last := t.Rows[len(t.Rows)-1]
		b.ReportMetric(cellPct(b, last[1]), "slot-skew-gain-%")
		b.ReportMetric(cellPct(b, last[2]), "bw-skew-gain-%")
	}
}

func BenchmarkForwardReverse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := exp.ForwardReverse(benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cellPct(b, t.Rows[1][1]), "best-of-improvement-%")
	}
}

// BenchmarkEndToEndSimulation measures the simulator itself: one full
// 16-site trace-driven run per iteration (the substrate cost underlying
// every figure).
func BenchmarkEndToEndSimulation(b *testing.B) {
	c := Sim50(1)
	jobs := GenerateTrace(TraceProduction, c, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(Options{Cluster: c, Jobs: jobs, Scheduler: SchedulerTetrium}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEndSimulationObserved is the same run with a Recorder
// attached — compare against BenchmarkEndToEndSimulation to see the
// price of full event retention and metrics aggregation.
func BenchmarkEndToEndSimulationObserved(b *testing.B) {
	c := Sim50(1)
	jobs := GenerateTrace(TraceProduction, c, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := NewRecorder()
		if _, err := Simulate(Options{Cluster: c, Jobs: jobs, Scheduler: SchedulerTetrium, Observer: rec}); err != nil {
			b.Fatal(err)
		}
	}
}
