package tetrium

import (
	"net/http"

	"tetrium/internal/engine"
	"tetrium/internal/engine/api"
)

// Engine is the online scheduling service: the counterpart of Simulate
// that accepts jobs while they arrive, holds live cluster state behind a
// single-writer event loop, and runs the paper's placement/ordering
// pipeline continuously. Create one with NewEngine; serve it over HTTP
// with EngineHandler (see cmd/tetrium-serve).
type Engine = engine.Engine

// EngineStatus types re-exported for callers of Engine methods.
type (
	// EngineJobStatus is a job snapshot returned by Engine.Submit/Job/Jobs.
	EngineJobStatus = engine.JobStatus
	// EngineClusterStatus is the live cluster view from Engine.Cluster.
	EngineClusterStatus = engine.ClusterStatus
	// EngineSiteUpdate is one §4.2 capacity change for Engine.UpdateCluster.
	EngineSiteUpdate = engine.SiteUpdate
)

// Engine sentinel errors.
var (
	// ErrEngineQueueFull: admission would exceed MaxPending — back off.
	ErrEngineQueueFull = engine.ErrQueueFull
	// ErrEngineDraining: the engine no longer accepts jobs.
	ErrEngineDraining = engine.ErrDraining
)

// EngineOptions configures NewEngine. The knob conventions match
// Options: Rho/Eps zero values mean 1 unless the corresponding Set flag
// is true.
type EngineOptions struct {
	Cluster   *Cluster
	Scheduler Scheduler

	// Rho is the WAN-budget knob ρ (§4.3); zero means 1 unless RhoSet.
	Rho    float64
	RhoSet bool
	// Eps is the fairness knob ε (§4.4); zero means 1 unless EpsSet.
	Eps    float64
	EpsSet bool

	// UpdateK bounds per-placement site changes on cluster updates
	// (§4.2); 0 allows full updates.
	UpdateK int
	// MaxPending bounds admitted-but-unfinished jobs (backpressure);
	// 0 means the engine default (1024).
	MaxPending int
	// TimeScale converts LP-estimated stage seconds to wall seconds.
	// 0 means the serving default of 1e-3 (1000× faster than estimated);
	// negative completes stages instantly.
	TimeScale float64
	// EventCap bounds the /debug/events buffer; 0 means the engine
	// default (65536).
	EventCap int
	// SolveWorkers sizes the off-loop placement solver pool; 0 means
	// GOMAXPROCS.
	SolveWorkers int
	// PlaceCacheSize bounds the placement memo cache in entries; 0 means
	// the engine default (4096), negative disables caching.
	PlaceCacheSize int

	// Check runs every LP solve under the certification layer.
	Check bool
}

// NewEngine starts an online scheduling engine. Callers must Close it
// (or Drain then Close for a graceful stop).
func NewEngine(o EngineOptions) (*Engine, error) {
	rho := 1.0
	if o.RhoSet {
		rho = o.Rho
	}
	eps := 1.0
	if o.EpsSet {
		eps = o.Eps
	}
	n := 0
	if o.Cluster != nil {
		n = o.Cluster.N()
	}
	placer, policy, err := plannerFor(o.Scheduler, n, o.Check)
	if err != nil {
		return nil, err
	}
	scale := o.TimeScale
	switch {
	case scale == 0:
		scale = 1e-3
	case scale < 0:
		scale = 0
	}
	return engine.New(engine.Config{
		Cluster:        o.Cluster,
		Placer:         placer,
		Policy:         policy,
		Rho:            rho,
		Eps:            eps,
		UpdateK:        o.UpdateK,
		MaxPending:     o.MaxPending,
		TimeScale:      scale,
		EventCap:       o.EventCap,
		SolveWorkers:   o.SolveWorkers,
		PlaceCacheSize: o.PlaceCacheSize,
	})
}

// EngineHandler serves an Engine over HTTP/JSON: POST /v1/jobs,
// GET /v1/jobs[/{id}], GET /v1/cluster, POST /v1/cluster/update,
// GET /metrics (Prometheus), GET /metrics.txt, GET /debug/events
// (JSONL), GET /healthz.
func EngineHandler(e *Engine) http.Handler { return api.Handler(e) }
