package tetrium

import (
	"errors"
	"net/http"
	"time"

	"tetrium/internal/engine"
	"tetrium/internal/engine/api"
	"tetrium/internal/fault"
	"tetrium/internal/federation"
	"tetrium/internal/fleet"
	"tetrium/internal/journal"
)

// Engine is the online scheduling service: the counterpart of Simulate
// that accepts jobs while they arrive, holds live cluster state behind a
// single-writer event loop, and runs the paper's placement/ordering
// pipeline continuously. Create one with NewEngine; serve it over HTTP
// with EngineHandler (see cmd/tetrium-serve).
type Engine = engine.Engine

// EngineStatus types re-exported for callers of Engine methods.
type (
	// EngineJobStatus is a job snapshot returned by Engine.Submit/Job/Jobs.
	EngineJobStatus = engine.JobStatus
	// EngineClusterStatus is the live cluster view from Engine.Cluster.
	EngineClusterStatus = engine.ClusterStatus
	// EngineSiteUpdate is one §4.2 capacity change for Engine.UpdateCluster.
	EngineSiteUpdate = engine.SiteUpdate
)

// Engine sentinel errors.
var (
	// ErrEngineQueueFull: admission would exceed MaxPending — back off.
	ErrEngineQueueFull = engine.ErrQueueFull
	// ErrEngineDraining: the engine no longer accepts jobs.
	ErrEngineDraining = engine.ErrDraining
)

// EngineOptions configures NewEngine. The knob conventions match
// Options: Rho/Eps zero values mean 1 unless the corresponding Set flag
// is true.
type EngineOptions struct {
	Cluster   *Cluster
	Scheduler Scheduler

	// Rho is the WAN-budget knob ρ (§4.3); zero means 1 unless RhoSet.
	Rho    float64
	RhoSet bool
	// Eps is the fairness knob ε (§4.4); zero means 1 unless EpsSet.
	Eps    float64
	EpsSet bool

	// UpdateK bounds per-placement site changes on cluster updates
	// (§4.2); 0 allows full updates.
	UpdateK int
	// MaxPending bounds admitted-but-unfinished jobs (backpressure);
	// 0 means the engine default (1024).
	MaxPending int
	// TimeScale converts LP-estimated stage seconds to wall seconds.
	// 0 means the serving default of 1e-3 (1000× faster than estimated);
	// negative completes stages instantly.
	TimeScale float64
	// EventCap bounds the /debug/events buffer; 0 means the engine
	// default (65536).
	EventCap int
	// SolveWorkers sizes the off-loop placement solver pool; 0 means
	// GOMAXPROCS.
	SolveWorkers int
	// PlaceCacheSize bounds the placement memo cache in entries; 0 means
	// the engine default (4096), negative disables caching.
	PlaceCacheSize int
	// BatchAdmit bounds how many queued admissions the event loop drains
	// into one scheduling instance (batched placement solving); 0 means
	// the engine default (8), 1 disables batching.
	BatchAdmit int

	// Check runs every LP solve under the certification layer.
	Check bool

	// FaultSpec, when non-empty, injects deterministic faults (site
	// crash/rejoin, link degrade/partition, stragglers, solve stalls)
	// per the internal/fault grammar, seeded by FaultSeed.
	FaultSpec string
	FaultSeed int64
	// JournalPath, when non-empty, makes accepted jobs durable: the
	// journal at this path is replayed on startup (a restart loses no
	// admitted job) and appended to while serving. SnapshotEvery bounds
	// journal growth (0: default 1024 records per snapshot+truncate).
	JournalPath   string
	SnapshotEvery int
	// Speculate launches duplicates of straggling stages on the fastest
	// eligible site; first finish wins.
	Speculate bool
	// SolveDeadline bounds each placement LP solve before the greedy
	// fallback places the stage instead; 0 disables.
	SolveDeadline time.Duration
	// ReplaceAsync moves §4.2 re-placement solves off the event loop:
	// cluster updates dispatch the dirty stages to the solve pool and
	// return, instead of blocking on every re-solve.
	ReplaceAsync bool

	// Supervise (federation only) turns on the self-healing supervisor:
	// per-shard heartbeat probes, automatic jittered-backoff restarts of
	// wedged/panicked/stopped shards through journal replay, and a
	// circuit breaker that parks flapping shards.
	Supervise bool
	// RestartBackoff is the supervisor's first restart delay (doubles
	// per consecutive failure up to 30s); 0 means the default 200ms.
	RestartBackoff time.Duration

	// Analytics enables the fleet-analytics store: every emitted event
	// feeds an in-memory per-tenant columnar store served under
	// /v1/analytics. Disabled, the event path does no extra work.
	Analytics bool
	// AnalyticsSnapshotPath, when non-empty (with Analytics), persists
	// a JSON snapshot of the store every AnalyticsSnapshotEvery
	// (default 30s); a final snapshot is written when the engine closes.
	AnalyticsSnapshotPath  string
	AnalyticsSnapshotEvery time.Duration
}

// NewEngine starts an online scheduling engine. Callers must Close it
// (or Drain then Close for a graceful stop).
func NewEngine(o EngineOptions) (*Engine, error) {
	rho := 1.0
	if o.RhoSet {
		rho = o.Rho
	}
	eps := 1.0
	if o.EpsSet {
		eps = o.Eps
	}
	n := 0
	if o.Cluster != nil {
		n = o.Cluster.N()
	}
	placer, policy, err := plannerFor(o.Scheduler, n, o.Check)
	if err != nil {
		return nil, err
	}
	scale := o.TimeScale
	switch {
	case scale == 0:
		scale = 1e-3
	case scale < 0:
		scale = 0
	}
	var inj *fault.Injector
	if o.FaultSpec != "" {
		inj, err = fault.Parse(o.FaultSpec, o.FaultSeed)
		if err != nil {
			return nil, err
		}
	}
	var (
		jnl     *journal.Journal
		restore *journal.State
	)
	if o.JournalPath != "" {
		jnl, restore, err = journal.Open(o.JournalPath, o.SnapshotEvery)
		if err != nil {
			return nil, err
		}
	}
	var analytics *fleet.Store
	if o.Analytics {
		analytics = fleet.New(fleet.Config{
			SnapshotPath:  o.AnalyticsSnapshotPath,
			SnapshotEvery: o.AnalyticsSnapshotEvery,
		})
	}
	cfg := engine.Config{
		Cluster:        o.Cluster,
		Placer:         placer,
		Policy:         policy,
		Rho:            rho,
		Eps:            eps,
		UpdateK:        o.UpdateK,
		MaxPending:     o.MaxPending,
		TimeScale:      scale,
		EventCap:       o.EventCap,
		SolveWorkers:   o.SolveWorkers,
		PlaceCacheSize: o.PlaceCacheSize,
		BatchAdmit:     o.BatchAdmit,
		Faults:         inj,
		Journal:        jnl,
		Restore:        restore,
		Speculate:      o.Speculate,
		SolveDeadline:  o.SolveDeadline,
		ReplaceAsync:   o.ReplaceAsync,
	}
	if analytics != nil {
		// Assigned only when non-nil: a typed-nil *fleet.Store in the
		// interface field would defeat the hot path's nil check.
		cfg.Analytics = analytics
	}
	eng, err := engine.New(cfg)
	if err != nil {
		if jnl != nil {
			jnl.Close()
		}
		if analytics != nil {
			analytics.Close()
		}
		return nil, err
	}
	return eng, nil
}

// EngineHandler serves an Engine over HTTP/JSON: POST /v1/jobs,
// GET /v1/jobs[/{id}], GET /v1/cluster, POST /v1/cluster/update,
// GET /metrics (Prometheus), GET /metrics.txt, GET /debug/events
// (JSONL), GET /healthz (liveness), GET /readyz (readiness).
func EngineHandler(e *Engine) http.Handler { return api.Handler(e) }

// Federation is the sharded multi-engine service: N shared-nothing
// engine shards (each owning a 1/N capacity slice of the cluster and,
// when journaled, its own journal file) behind a thin router that
// load-balances admission, fans out §4.2 updates, and aggregates jobs,
// metrics, readiness, and debug events into one API surface. Create
// one with NewFederation; serve it with FederationHandler.
type Federation = federation.Federation

// NewFederation starts a sharded scheduling service: `shards` engine
// shards configured from the same EngineOptions that NewEngine takes.
// shardBy picks the submission partitioning: "hash" (default) spreads
// jobs by name hash, "site" routes each job to the shard owning its
// dominant input site. Each shard builds its own placer and solve
// pool; JournalPath becomes a per-shard prefix (<path>.shard<i>);
// FaultSpec is injected into every shard with seed FaultSeed+shard.
// The fleet-analytics store is not yet supported behind the router —
// set Analytics on a single engine instead.
//
// With shards == 1 the engine path is strictly more capable; use
// NewEngine (cmd/tetrium-serve does exactly that, keeping -shards 1
// bit-compatible with the pre-federation single-engine service).
func NewFederation(o EngineOptions, shards int, shardBy string) (*Federation, error) {
	if shards < 2 {
		return nil, errors.New("tetrium: NewFederation wants shards >= 2; use NewEngine for a single engine")
	}
	if o.Analytics {
		return nil, errors.New("tetrium: fleet analytics is not supported behind the federation router yet")
	}
	if o.Cluster == nil {
		return nil, errors.New("tetrium: Cluster is required")
	}
	smap, err := federation.ParseShardMap(shardBy, shards)
	if err != nil {
		return nil, err
	}
	rho := 1.0
	if o.RhoSet {
		rho = o.Rho
	}
	eps := 1.0
	if o.EpsSet {
		eps = o.Eps
	}
	scale := o.TimeScale
	switch {
	case scale == 0:
		scale = 1e-3
	case scale < 0:
		scale = 0
	}
	n := o.Cluster.N()
	member := func(shard int) (engine.Config, error) {
		placer, policy, err := plannerFor(o.Scheduler, n, o.Check)
		if err != nil {
			return engine.Config{}, err
		}
		cfg := engine.Config{
			Placer:         placer,
			Policy:         policy,
			Rho:            rho,
			Eps:            eps,
			UpdateK:        o.UpdateK,
			MaxPending:     o.MaxPending,
			TimeScale:      scale,
			EventCap:       o.EventCap,
			SolveWorkers:   o.SolveWorkers,
			PlaceCacheSize: o.PlaceCacheSize,
			BatchAdmit:     o.BatchAdmit,
			Speculate:      o.Speculate,
			SolveDeadline:  o.SolveDeadline,
			ReplaceAsync:   o.ReplaceAsync,
		}
		if o.FaultSpec != "" {
			inj, err := fault.Parse(o.FaultSpec, o.FaultSeed+int64(shard))
			if err != nil {
				return engine.Config{}, err
			}
			cfg.Faults = inj
		}
		return cfg, nil
	}
	fcfg := federation.Config{
		Shards:        shards,
		Cluster:       o.Cluster,
		ShardMap:      smap,
		Member:        member,
		JournalPath:   o.JournalPath,
		SnapshotEvery: o.SnapshotEvery,
		Supervise:     o.Supervise,
		Supervisor: federation.SupervisorConfig{
			Enabled:     o.Supervise,
			BackoffBase: o.RestartBackoff,
		},
	}
	if o.FaultSpec != "" {
		// The same spec is armed once at the federation level for its
		// fleet-scoped clauses (panic@T:site=S, corrupt@T:shard=I,rec=N);
		// the per-shard injectors above skip those, and this one skips
		// the engine-scoped clauses, so nothing fires twice.
		inj, err := fault.Parse(o.FaultSpec, o.FaultSeed)
		if err != nil {
			return nil, err
		}
		fcfg.Faults = inj
	}
	return federation.New(fcfg)
}

// FederationHandler serves a Federation over HTTP/JSON with the same
// surface as EngineHandler plus GET /v1/federation (per-shard state);
// /debug/events merges the shard streams with a per-shard cursor
// vector.
func FederationHandler(f *Federation) http.Handler { return federation.Handler(f) }
