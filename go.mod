module tetrium

go 1.22
