// Extensions: the two §8 discussion-section features — HDFS-style data
// replication with replica selection, and straggler speculation — on a
// trace where 10% of tasks run 6× long.
package main

import (
	"fmt"
	"log"

	"tetrium"
)

func main() {
	cl := tetrium.EC2EightRegions()

	base := tetrium.GenerateTraceOpts(tetrium.TraceBigData, cl, 12, 5, tetrium.TraceOptions{
		StragglerProb:   0.10,
		StragglerFactor: 6,
	})
	// Same trace, plus two replicas per partition: an apples-to-apples
	// with/without comparison.
	replicated := tetrium.AddReplicas(base, cl, 2, 5)

	type variant struct {
		name string
		jobs []*tetrium.Job
		spec bool
	}
	fmt.Printf("%-18s %12s %10s %8s %8s\n", "configuration", "mean (s)", "WAN (GB)", "copies", "rescues")
	for _, v := range []variant{
		{"base", base, false},
		{"+ replicas (2x)", replicated, false},
		{"+ speculation", base, true},
		{"+ both", replicated, true},
	} {
		res, err := tetrium.Simulate(tetrium.Options{
			Cluster:     cl,
			Jobs:        v.jobs,
			Scheduler:   tetrium.SchedulerTetrium,
			Speculation: v.spec,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12.1f %10.1f %8d %8d\n",
			v.name, res.MeanResponse(), res.WANBytes/tetrium.GB,
			res.SpeculativeCopies, res.SpeculativeRescues)
	}
	fmt.Println("\nReplicas let map tasks read locally wherever a copy exists; speculation")
	fmt.Println("bounds straggler damage with redundant copies (§8).")
}
