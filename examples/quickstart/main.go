// Quickstart: place and run one analytics job on the paper's 3-site
// example cluster (Fig. 4), comparing Tetrium against the In-Place and
// Centralized strategies.
package main

import (
	"fmt"
	"log"

	"tetrium"
)

func main() {
	// The Fig. 4 cluster: site-1 is slot- and bandwidth-rich but holds
	// the least data.
	cl := tetrium.PaperExampleCluster()

	// A small TPC-DS-like batch whose partitions live on those sites.
	jobs := tetrium.GenerateTrace(tetrium.TraceTPCDS, cl, 5, 42)

	// Inspect Tetrium's §3.1 map placement for the first job: the LP
	// sheds work from the slot-poor data sites toward site-1.
	est, tasksBySite, err := tetrium.PlaceJob(cl, jobs[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("first job: %d map tasks placed as %v (estimated stage time %.1f s)\n\n",
		jobs[0].Stages[0].NumTasks(), tasksBySite, est)

	// Run the whole batch under three schedulers.
	for _, s := range []tetrium.Scheduler{
		tetrium.SchedulerTetrium,
		tetrium.SchedulerInPlace,
		tetrium.SchedulerCentralized,
	} {
		res, err := tetrium.Simulate(tetrium.Options{
			Cluster:   cl,
			Jobs:      jobs,
			Scheduler: s,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s mean response %7.1f s   WAN %6.1f GB\n",
			s, res.MeanResponse(), res.WANBytes/tetrium.GB)
	}
}
