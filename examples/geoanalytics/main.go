// Geoanalytics: a realistic multi-job scenario on the paper's 8-region
// EC2-like deployment — the §1 motivating workload of continuously
// arriving log-analysis queries — comparing all five schedulers on
// response time, tail latency, slowdown, and WAN usage.
package main

import (
	"fmt"
	"log"
	"sort"

	"tetrium"
)

func main() {
	cl := tetrium.EC2EightRegions()
	fmt.Println("cluster:")
	for i, s := range cl.Sites {
		fmt.Printf("  site %d: %v\n", i, s)
	}

	// A mixed batch: short BigData-style queries arriving alongside
	// deeper TPC-DS-style reports.
	jobs := tetrium.GenerateTrace(tetrium.TraceBigData, cl, 14, 7)
	deep := tetrium.GenerateTrace(tetrium.TraceTPCDS, cl, 6, 8)
	for i, j := range deep {
		j.ID = len(jobs) + i
		j.Name = fmt.Sprintf("report-%02d", i)
		jobs = append(jobs, j)
	}
	fmt.Printf("\nworkload: %d jobs\n\n", len(jobs))

	fmt.Printf("%-12s %10s %10s %10s %10s %10s\n",
		"scheduler", "mean (s)", "p90 (s)", "slowdown", "WAN (GB)", "makespan")
	for _, s := range []tetrium.Scheduler{
		tetrium.SchedulerTetrium,
		tetrium.SchedulerIridium,
		tetrium.SchedulerInPlace,
		tetrium.SchedulerCentralized,
		tetrium.SchedulerTetris,
	} {
		opts := tetrium.Options{Cluster: cl, Jobs: jobs, Scheduler: s}
		res, err := tetrium.Simulate(opts)
		if err != nil {
			log.Fatal(err)
		}
		// Slowdown: response over the job's isolated response (§6.1).
		slow := make([]float64, 0, len(res.Jobs))
		byID := map[int]*tetrium.Job{}
		for _, j := range jobs {
			byID[j.ID] = j
		}
		for _, jr := range res.Jobs {
			iso, err := tetrium.SimulateIsolated(opts, byID[jr.ID])
			if err != nil {
				log.Fatal(err)
			}
			if iso > 0 {
				slow = append(slow, jr.Response/iso)
			}
		}
		fmt.Printf("%-12s %10.1f %10.1f %10.2f %10.1f %10.1f\n",
			s,
			res.MeanResponse(),
			p90(res.Responses()),
			mean(slow),
			res.WANBytes/tetrium.GB,
			res.Makespan)
	}
}

func p90(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	i := int(0.9*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range v {
		t += x
	}
	return t / float64(len(v))
}
