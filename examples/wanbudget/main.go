// WAN budget: sweep the ρ knob (§4.3) and print the response-time /
// WAN-usage trade-off. The cluster is the paper's Fig. 4 example —
// compute-constrained at the data-heavy sites — so spending WAN budget
// genuinely buys response time, while ρ = 0 pins data in place to
// minimize egress cost.
package main

import (
	"fmt"
	"log"

	"tetrium"
)

func main() {
	cl := tetrium.PaperExampleCluster()
	jobs := tetrium.GenerateTrace(tetrium.TraceTPCDS, cl, 10, 11)

	type point struct {
		rho  float64
		resp float64
		wan  float64
	}
	var pts []point
	for _, rho := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res, err := tetrium.Simulate(tetrium.Options{
			Cluster:   cl,
			Jobs:      jobs,
			Scheduler: tetrium.SchedulerTetrium,
			Rho:       rho, RhoSet: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		pts = append(pts, point{rho, res.MeanResponse(), res.WANBytes / tetrium.GB})
	}

	fmt.Println("rho    mean response (s)    WAN usage (GB)")
	fmt.Println("----   -----------------    --------------")
	for _, p := range pts {
		fmt.Printf("%.2f   %17.1f    %14.2f\n", p.rho, p.resp, p.wan)
	}
	fmt.Println("\nrho=0 minimizes cross-site bytes (egress cost); rho=1 spends the")
	fmt.Println("full WAN budget on response time (§4.3). Pick the knee that fits")
	fmt.Println("your egress bill.")
}
