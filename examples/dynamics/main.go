// Dynamics: mid-run, a site loses 40% of its capacity (a co-located
// client-facing service spikes, §2.1). Tetrium re-plans, but updating
// every site's assignment is expensive — the k knob (§4.2) bounds how
// many sites an update may touch.
package main

import (
	"fmt"
	"log"

	"tetrium"
)

func main() {
	cl := tetrium.NewCluster([]tetrium.Site{
		{Name: "hub", Slots: 24, UpBW: 1 * tetrium.Gbps, DownBW: 1 * tetrium.Gbps},
		{Name: "east", Slots: 12, UpBW: 600 * tetrium.Mbps, DownBW: 600 * tetrium.Mbps},
		{Name: "west", Slots: 12, UpBW: 600 * tetrium.Mbps, DownBW: 600 * tetrium.Mbps},
		{Name: "edge-1", Slots: 6, UpBW: 150 * tetrium.Mbps, DownBW: 150 * tetrium.Mbps},
		{Name: "edge-2", Slots: 6, UpBW: 150 * tetrium.Mbps, DownBW: 150 * tetrium.Mbps},
		{Name: "edge-3", Slots: 6, UpBW: 100 * tetrium.Mbps, DownBW: 100 * tetrium.Mbps},
	})
	jobs := tetrium.GenerateTrace(tetrium.TraceProduction, cl, 15, 31)

	// The hub loses 40% of its slots and bandwidth 30 s in.
	drops := []tetrium.Drop{{Time: 30, Site: 0, Frac: 0.4}}

	base, err := tetrium.Simulate(tetrium.Options{
		Cluster: cl, Jobs: jobs, Scheduler: tetrium.SchedulerTetrium,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("no drop:              mean response %6.1f s\n\n", base.MeanResponse())

	fmt.Println("k (updatable sites)   mean response (s)")
	fmt.Println("-------------------   -----------------")
	for _, k := range []int{1, 2, 3, 0} {
		res, err := tetrium.Simulate(tetrium.Options{
			Cluster: cl, Jobs: jobs, Scheduler: tetrium.SchedulerTetrium,
			Drops: drops, UpdateK: k,
		})
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%d", k)
		if k == 0 {
			label = "all"
		}
		fmt.Printf("%-21s %17.1f\n", label, res.MeanResponse())
	}
	fmt.Println("\nSmall k limits update traffic to the site managers; larger k tracks")
	fmt.Println("the ideal re-assignment more closely (§4.2).")
}
