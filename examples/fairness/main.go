// Fairness: a burst of small interactive queries arrives while a large
// batch report holds the cluster. The ε knob (§4.4) trades the small
// jobs' latency (SRPT) against the big job's guaranteed share.
package main

import (
	"fmt"
	"log"

	"tetrium"
)

func main() {
	cl := tetrium.NewCluster([]tetrium.Site{
		{Name: "a", Slots: 8, UpBW: 1 * tetrium.Gbps, DownBW: 1 * tetrium.Gbps},
		{Name: "b", Slots: 8, UpBW: 1 * tetrium.Gbps, DownBW: 1 * tetrium.Gbps},
		{Name: "c", Slots: 8, UpBW: 500 * tetrium.Mbps, DownBW: 500 * tetrium.Mbps},
	})

	// One big report plus a stream of small dashboards, all competing.
	jobs := tetrium.GenerateTrace(tetrium.TraceTPCDS, cl, 1, 21) // the big job
	small := tetrium.GenerateTrace(tetrium.TraceBigData, cl, 9, 22)
	for i, j := range small {
		j.ID = 1 + i
		j.Name = fmt.Sprintf("dash-%02d", i)
		j.Arrival = float64(i) // trickle in behind the report
		jobs = append(jobs, j)
	}

	fmt.Println("eps    small-job mean (s)    big-job response (s)")
	fmt.Println("----   ------------------    --------------------")
	for _, eps := range []float64{0, 0.3, 0.6, 1} {
		res, err := tetrium.Simulate(tetrium.Options{
			Cluster:   cl,
			Jobs:      jobs,
			Scheduler: tetrium.SchedulerTetrium,
			Eps:       eps, EpsSet: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		var smallSum, big float64
		nSmall := 0
		for _, j := range res.Jobs {
			if j.ID == 0 {
				big = j.Response
			} else {
				smallSum += j.Response
				nSmall++
			}
		}
		fmt.Printf("%.1f    %18.1f    %20.1f\n", eps, smallSum/float64(nSmall), big)
	}
	fmt.Println("\neps=1 is pure SRPT (small jobs jump the queue); eps=0 reserves every")
	fmt.Println("job its proportional slot share (§4.4).")
}
