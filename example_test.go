package tetrium_test

import (
	"fmt"

	"tetrium"
)

// Example runs a small batch on the paper's Fig. 4 cluster and reports
// which scheduler finished it faster.
func Example() {
	cl := tetrium.PaperExampleCluster()
	jobs := tetrium.GenerateTrace(tetrium.TraceBigData, cl, 4, 7)

	tet, err := tetrium.Simulate(tetrium.Options{
		Cluster: cl, Jobs: jobs, Scheduler: tetrium.SchedulerTetrium,
	})
	if err != nil {
		panic(err)
	}
	inp, err := tetrium.Simulate(tetrium.Options{
		Cluster: cl, Jobs: jobs, Scheduler: tetrium.SchedulerInPlace,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("tetrium faster:", tet.MeanResponse() < inp.MeanResponse())
	// Output: tetrium faster: true
}

// ExampleSimulate_wanBudget shows the ρ knob: the same workload run with
// the minimum WAN budget moves strictly fewer bytes across sites.
func ExampleSimulate_wanBudget() {
	cl := tetrium.PaperExampleCluster()
	jobs := tetrium.GenerateTrace(tetrium.TraceBigData, cl, 4, 7)

	frugal, err := tetrium.Simulate(tetrium.Options{
		Cluster: cl, Jobs: jobs, Scheduler: tetrium.SchedulerTetrium,
		Rho: 0, RhoSet: true,
	})
	if err != nil {
		panic(err)
	}
	spender, err := tetrium.Simulate(tetrium.Options{
		Cluster: cl, Jobs: jobs, Scheduler: tetrium.SchedulerTetrium,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("rho=0 moves fewer bytes:", frugal.WANBytes < spender.WANBytes)
	// Output: rho=0 moves fewer bytes: true
}
