package tetrium

import "testing"

// TestSchedulerRoundTrip: ParseScheduler must invert String for every
// scheduler, so flags, JSON output, and logs all share one vocabulary.
func TestSchedulerRoundTrip(t *testing.T) {
	for _, s := range Schedulers() {
		got, err := ParseScheduler(s.String())
		if err != nil {
			t.Errorf("ParseScheduler(%q): %v", s.String(), err)
		}
		if got != s {
			t.Errorf("ParseScheduler(%q) = %v, want %v", s.String(), got, s)
		}
	}
}

func TestParseSchedulerErrors(t *testing.T) {
	for _, bad := range []string{"", "TETRIUM", "spark", "Scheduler(9)"} {
		if _, err := ParseScheduler(bad); err == nil {
			t.Errorf("ParseScheduler(%q) accepted", bad)
		}
	}
	// The undocumented but convenient alias.
	if s, err := ParseScheduler("inplace"); err != nil || s != SchedulerInPlace {
		t.Errorf("ParseScheduler(inplace) = %v, %v", s, err)
	}
}

func TestSchedulerNames(t *testing.T) {
	names := SchedulerNames()
	if len(names) != len(Schedulers()) {
		t.Fatalf("%d names for %d schedulers", len(names), len(Schedulers()))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate scheduler name %q", n)
		}
		seen[n] = true
	}
}
