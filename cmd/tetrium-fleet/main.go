// Command tetrium-fleet ingests saved tetrium-serve artifacts — a
// durable-restart journal and/or a JSONL event trace (from
// /debug/events or an exported obs stream) — into the same fleet
// analytics store the live /v1/analytics endpoints serve, then prints
// the reports or serves them over HTTP.
//
// Offline report over a finished run:
//
//	tetrium-fleet -journal run.journal -events events.jsonl
//
// The offline totals (jobs, slot-seconds, WAN bytes) match the live
// server's /v1/analytics numbers bit-for-bit for the same artifacts:
// the store only sums what the events carry, in order, and the engine
// computes each quantity exactly once before serializing it.
//
// Serve the same endpoints over the ingested artifacts:
//
//	tetrium-fleet -events events.jsonl -serve :9090
//	curl localhost:9090/v1/analytics/resource-hogs
//
// Machine-readable output for scripting:
//
//	tetrium-fleet -events events.jsonl -json | jq .totals
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"tetrium/internal/fleet"
	"tetrium/internal/journal"
)

func main() {
	var (
		journalPath = flag.String("journal", "", "journal file to ingest (read-only; no snapshot side effects)")
		eventsPath  = flag.String("events", "", "JSONL event trace to ingest (- for stdin)")
		top         = flag.Int("top", 10, "top-N jobs in the resource-hogs report")
		windows     = flag.Int("windows", 10, "usage-trend windows to print")
		asJSON      = flag.Bool("json", false, "print the full summary as JSON instead of tables")
		serveAddr   = flag.String("serve", "", "serve /v1/analytics over HTTP at this address instead of printing")
	)
	flag.Parse()

	if *journalPath == "" && *eventsPath == "" {
		fmt.Fprintln(os.Stderr, "tetrium-fleet: need -journal and/or -events (see -h)")
		os.Exit(2)
	}

	st := fleet.New(fleet.Config{})
	defer st.Close()

	// Events first, journal second: the journal fold only fills in jobs
	// whose events are missing from the trace (ring overflow, partial
	// capture), so the event-derived numbers win when both sources cover
	// a job. This is the same order the live store sees.
	if *eventsPath != "" {
		f := os.Stdin
		if *eventsPath != "-" {
			var err error
			f, err = os.Open(*eventsPath)
			if err != nil {
				fail(err)
			}
			defer f.Close()
		}
		n, err := st.IngestJSONL(f)
		if err != nil {
			fail(fmt.Errorf("events: %w", err))
		}
		fmt.Fprintf(os.Stderr, "tetrium-fleet: ingested %d events from %s\n", n, *eventsPath)
	}
	if *journalPath != "" {
		jst, err := journal.ReadFile(*journalPath)
		if err != nil {
			fail(fmt.Errorf("journal: %w", err))
		}
		st.IngestJournal(jst)
		fmt.Fprintf(os.Stderr, "tetrium-fleet: folded journal %s (%d live, %d done)\n",
			*journalPath, len(jst.Live), len(jst.Done))
	}

	if *serveAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/v1/analytics/", http.StripPrefix("/v1/analytics", fleet.Routes(st)))
		fmt.Fprintf(os.Stderr, "tetrium-fleet: serving /v1/analytics on %s\n", *serveAddr)
		fail(http.ListenAndServe(*serveAddr, mux))
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(st.Summary()); err != nil {
			fail(err)
		}
		return
	}
	printReports(st, *top, *windows)
}

func printReports(st *fleet.Store, top, windows int) {
	t := st.Totals()
	fmt.Printf("totals: %d jobs done (%d admitted), %.6g slot-seconds, %.6g WAN bytes\n\n",
		t.Jobs, t.Admitted, t.SlotSeconds, t.WANBytes)

	hogs := st.ResourceHogs(top)
	fmt.Println("resource hogs (by slot-seconds):")
	fmt.Println("  tenant           admitted  done  slot-sec     slot%   wan-bytes    wan%")
	for _, tn := range hogs.Tenants {
		fmt.Printf("  %-15s  %8d  %4d  %-10.6g  %5.1f  %-10.6g  %5.1f\n",
			tn.Tenant, tn.Admitted, tn.Done, tn.SlotSeconds, tn.SlotShare*100,
			tn.WANBytes, tn.WANShare*100)
	}
	if len(hogs.TopJobsBySlotSeconds) > 0 {
		fmt.Println("  top jobs by slot-seconds:")
		for _, j := range hogs.TopJobsBySlotSeconds {
			fmt.Printf("    job %-5d  %-12s  %-15s  %.6g slot-sec, %.6g wan\n",
				j.ID, j.Tenant, j.Name, j.SlotSeconds, j.WANBytes)
		}
	}

	eff := st.Efficiency()
	fmt.Println("\nefficiency:")
	for _, tn := range eff.Tenants {
		fmt.Printf("  %-15s  speculated=%d rescued=%d (rate %.2f)  requeues=%d waste=%.6g slot-sec (%.1f%%)\n",
			tn.Tenant, tn.SpeculatedStages, tn.RescuedStages, tn.RescueRate,
			tn.Requeues, tn.WasteSlotSeconds, tn.WasteFraction*100)
	}
	fmt.Printf("  lp: %d solves, %d cache hits (%.1f%% hit rate), %d fallbacks, %d deadline fallbacks\n",
		eff.LPSolves, eff.LPCacheHits, eff.CacheHitRate*100, eff.LPFallbacks, eff.LPDeadlineFallbacks)

	acc := st.EstimateAccuracy()
	fmt.Println("\nestimate accuracy (relative error, estimate vs actual):")
	if acc.Overall.Count == 0 {
		fmt.Println("  no samples")
	} else {
		o := acc.Overall
		fmt.Printf("  overall          n=%-5d mean=%.4f p50=%.4f p90=%.4f p95=%.4f p99=%.4f\n",
			o.Count, o.Mean, o.P50, o.P90, o.P95, o.P99)
		for _, tn := range acc.Tenants {
			p := tn.ErrPercentiles
			fmt.Printf("  %-15s  n=%-5d mean=%.4f p50=%.4f p90=%.4f p95=%.4f p99=%.4f\n",
				tn.Tenant, p.Count, p.Mean, p.P50, p.P90, p.P95, p.P99)
		}
	}

	tr := st.UsageTrends(windows)
	fmt.Printf("\nusage trends (last %d windows of %.0fs):\n", len(tr.Windows), tr.WindowSeconds)
	for _, w := range tr.Windows {
		fmt.Printf("  [%.0f..%.0f)  jobs_done=%d wan=%.6g slot-sec/site=%v\n",
			w.Start, w.End, w.JobsDone, w.WANBytes, w.SlotSecondsBySite)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "tetrium-fleet:", err)
	os.Exit(1)
}
