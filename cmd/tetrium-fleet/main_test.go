package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"tetrium"
	"tetrium/internal/cluster"
	"tetrium/internal/engine/api"
	"tetrium/internal/fleet"
)

// TestMain doubles as the tetrium-fleet process for the CLI test below.
func TestMain(m *testing.M) {
	if os.Getenv("TETRIUM_FLEET_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// TestAnalyticsSmoke is the `make analytics-smoke` gate: a live server
// with analytics enabled runs a small multi-tenant load, all four
// /v1/analytics endpoint families return non-empty well-formed JSON,
// and offline tetrium-fleet ingestion of the run's journal + event
// trace reproduces the live totals bit-for-bit.
func TestAnalyticsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.journal")

	cl, err := cluster.Preset("paper", 1)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	eng, err := tetrium.NewEngine(tetrium.EngineOptions{
		Cluster:     cl,
		JournalPath: jpath,
		Analytics:   true,
	})
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	srv := httptest.NewServer(tetrium.EngineHandler(eng))
	defer srv.Close()

	// Multi-tenant load: three tenants, a dozen jobs.
	jobs := tetrium.GenerateTrace(tetrium.TraceBigData, cl, 12, 1)
	tenants := []string{"acme", "beta", "gamma"}
	for i, j := range jobs {
		j.Tenant = tenants[i%len(tenants)]
		body, err := json.Marshal(api.FromWorkload(j))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/jobs: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %s", i, resp.Status)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := eng.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// All four endpoint families: non-empty, well-formed, per-tenant.
	var liveTotals fleet.Totals
	for _, ep := range []string{
		"/v1/analytics/resource-hogs",
		"/v1/analytics/efficiency",
		"/v1/analytics/estimate-accuracy",
		"/v1/analytics/capacity/usage-trends",
	} {
		resp, err := http.Get(srv.URL + ep)
		if err != nil {
			t.Fatalf("GET %s: %v", ep, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", ep, resp.Status)
		}
		var doc map[string]json.RawMessage
		if err := json.Unmarshal(body, &doc); err != nil {
			t.Fatalf("GET %s: not a JSON object: %v", ep, err)
		}
		if len(doc) == 0 {
			t.Fatalf("GET %s: empty document", ep)
		}
	}
	var hogs fleet.ResourceHogs
	resp, err := http.Get(srv.URL + "/v1/analytics/resource-hogs")
	if err != nil {
		t.Fatalf("GET resource-hogs: %v", err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&hogs); err != nil {
		t.Fatalf("decode resource-hogs: %v", err)
	}
	resp.Body.Close()
	liveTotals = hogs.Totals
	if liveTotals.Jobs != len(jobs) || liveTotals.SlotSeconds <= 0 {
		t.Fatalf("implausible live totals: %+v", liveTotals)
	}
	seen := map[string]bool{}
	for _, tn := range hogs.Tenants {
		seen[tn.Tenant] = true
	}
	for _, want := range tenants {
		if !seen[want] {
			t.Fatalf("tenant %q missing from live report: %+v", want, hogs.Tenants)
		}
	}

	// Save the event trace, then shut down (flushing the journal).
	epath := filepath.Join(dir, "events.jsonl")
	resp, err = http.Get(srv.URL + "/debug/events")
	if err != nil {
		t.Fatalf("GET /debug/events: %v", err)
	}
	trace, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.Header.Get("Tetrium-Events-Dropped") != "0" {
		t.Fatalf("event ring dropped events; parity check needs the full trace")
	}
	if err := os.WriteFile(epath, trace, 0o644); err != nil {
		t.Fatalf("save trace: %v", err)
	}
	srv.Close()
	eng.Close()

	// Offline: the real CLI ingests the artifacts and must reproduce the
	// live totals bit-for-bit.
	cmd := exec.Command(os.Args[0], "-journal", jpath, "-events", epath, "-json")
	cmd.Env = append(os.Environ(), "TETRIUM_FLEET_HELPER=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("tetrium-fleet: %v\nstderr:\n%s", err, stderr.String())
	}
	var snap fleet.Snapshot
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatalf("tetrium-fleet -json output: %v\n%s", err, stdout.String())
	}
	if snap.Totals != liveTotals {
		t.Errorf("offline totals diverge from live:\nlive    %+v\noffline %+v\nstderr:\n%s",
			liveTotals, snap.Totals, stderr.String())
	}

	// The human-readable report path also runs clean.
	cmd = exec.Command(os.Args[0], "-journal", jpath, "-events", epath)
	cmd.Env = append(os.Environ(), "TETRIUM_FLEET_HELPER=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("tetrium-fleet report: %v\n%s", err, out)
	}
	for _, want := range []string{"totals:", "resource hogs", "efficiency:", "estimate accuracy", "usage trends"} {
		if !bytes.Contains(out, []byte(want)) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestFleetCLIUsage: no inputs is a usage error, not a crash.
func TestFleetCLIUsage(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "TETRIUM_FLEET_HELPER=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("expected non-zero exit with no inputs; output:\n%s", out)
	}
	if !bytes.Contains(out, []byte("-journal")) {
		t.Errorf("usage message does not mention -journal:\n%s", out)
	}
}
