package main

import (
	"math"
	"testing"
)

func TestCompareGeomeanSurvivesBadLines(t *testing.T) {
	b := map[string][]sample{
		"BenchmarkGood":  {{nsOp: 200, allocsOp: 10}},
		"BenchmarkDead":  {{nsOp: 1e300, allocsOp: 4}},
		"BenchmarkTiny":  {{nsOp: 1, allocsOp: 1}},
		"BenchmarkOnlyB": {{nsOp: 50}},
	}
	a := map[string][]sample{
		"BenchmarkGood":  {{nsOp: 100, allocsOp: 5}},
		"BenchmarkDead":  {{nsOp: 1e-300, allocsOp: 4}}, // ratio overflows to +Inf
		"BenchmarkTiny":  {{nsOp: 1e6, allocsOp: 1}},    // ratio rounds to 0
		"BenchmarkOnlyA": {{nsOp: 70}},
	}
	rep := compare("b.txt", "a.txt", b, a)

	if math.IsNaN(rep.GeomeanSpeedup) || math.IsInf(rep.GeomeanSpeedup, 0) {
		t.Fatalf("GeomeanSpeedup = %v, want finite", rep.GeomeanSpeedup)
	}
	if math.IsNaN(rep.GeomeanAllocsRatio) || math.IsInf(rep.GeomeanAllocsRatio, 0) {
		t.Fatalf("GeomeanAllocsRatio = %v, want finite", rep.GeomeanAllocsRatio)
	}
	// The +Inf ratio is excluded; the tiny-but-positive ratio still
	// contributes its true (unrounded) value: geomean(2, 1e-6) ≈ 1.4e-3,
	// which rounds to 0 in the report but must not be NaN.
	for _, row := range rep.Benchmarks {
		if math.IsNaN(row.Speedup) || math.IsInf(row.Speedup, 0) {
			t.Fatalf("row %s Speedup = %v, want finite", row.Name, row.Speedup)
		}
	}
}

func TestCompareGeomeanHappyPath(t *testing.T) {
	b := map[string][]sample{
		"BenchmarkX": {{nsOp: 400, allocsOp: 20}},
		"BenchmarkY": {{nsOp: 100, allocsOp: 8}},
	}
	a := map[string][]sample{
		"BenchmarkX": {{nsOp: 100, allocsOp: 10}},
		"BenchmarkY": {{nsOp: 100, allocsOp: 2}},
	}
	rep := compare("b.txt", "a.txt", b, a)
	if got, want := rep.GeomeanSpeedup, 2.0; got != want { // geomean(4, 1)
		t.Errorf("GeomeanSpeedup = %v, want %v", got, want)
	}
	if got, want := rep.GeomeanAllocsRatio, round2(math.Sqrt(8)); got != want { // geomean(2, 4)
		t.Errorf("GeomeanAllocsRatio = %v, want %v", got, want)
	}
}

func TestGeoTerm(t *testing.T) {
	for _, tc := range []struct {
		ratio float64
		ok    bool
	}{
		{2, true}, {1e-9, true}, {0, false}, {-1, false},
		{math.Inf(1), false}, {math.NaN(), false},
	} {
		if _, ok := geoTerm(tc.ratio); ok != tc.ok {
			t.Errorf("geoTerm(%v) ok = %v, want %v", tc.ratio, ok, tc.ok)
		}
	}
}

func TestRound2NonFinite(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300} {
		if got := round2(v); got != 0 {
			t.Errorf("round2(%v) = %v, want 0", v, got)
		}
	}
	if got := round2(1.234); got != 1.23 {
		t.Errorf("round2(1.234) = %v, want 1.23", got)
	}
}

func TestMinSpeedupGate(t *testing.T) {
	for _, tc := range []struct {
		geomean, min float64
		fail         bool
	}{
		{5.0, 1.0, false}, // healthy speedup passes
		{0.8, 1.0, true},  // regression rejected
		{1.0, 1.0, false}, // exactly at the floor passes
		{0.5, 0, false},   // no gate configured
		{0, 1.0, true},    // no comparable benchmarks: reject, not vacuous pass
	} {
		rep := Report{GeomeanSpeedup: tc.geomean}
		if got := gateFails(rep, tc.min); got != tc.fail {
			t.Errorf("gateFails(geomean=%v, min=%v) = %v, want %v", tc.geomean, tc.min, got, tc.fail)
		}
	}
}
