// Command benchjson compares two `go test -bench` output files and
// writes a JSON report of per-benchmark medians with speedup and
// allocation ratios. It is the tool behind `make bench-place`:
//
//	benchjson -before bench/pr4_before.txt -after bench/pr4_after.txt -out BENCH_PR4.json
//
// Repeated runs of the same benchmark (-count=N) are aggregated by
// median, which is robust to the occasional noisy run on a shared box.
// Benchmarks present in only one file are reported without ratios.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark result line.
type sample struct {
	nsOp     float64
	bytesOp  float64
	allocsOp float64
}

// Row is one benchmark's before/after comparison in the JSON report.
type Row struct {
	Name string `json:"name"`

	BeforeNsOp     float64 `json:"before_ns_op,omitempty"`
	BeforeBytesOp  float64 `json:"before_bytes_op,omitempty"`
	BeforeAllocsOp float64 `json:"before_allocs_op,omitempty"`

	AfterNsOp     float64 `json:"after_ns_op,omitempty"`
	AfterBytesOp  float64 `json:"after_bytes_op,omitempty"`
	AfterAllocsOp float64 `json:"after_allocs_op,omitempty"`

	// Speedup is before/after time: 2 means twice as fast.
	Speedup float64 `json:"speedup,omitempty"`
	// AllocsRatio is before/after allocations: 5 means 5× fewer.
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Before     string `json:"before"`
	After      string `json:"after"`
	Benchmarks []Row  `json:"benchmarks"`

	// Geometric means across benchmarks present in both files.
	GeomeanSpeedup     float64 `json:"geomean_speedup,omitempty"`
	GeomeanAllocsRatio float64 `json:"geomean_allocs_ratio,omitempty"`
}

func main() {
	before := flag.String("before", "", "baseline `go test -bench` output file")
	after := flag.String("after", "", "current `go test -bench` output file")
	out := flag.String("out", "", "output JSON path (default stdout)")
	minSpeedup := flag.Float64("min-speedup", 0, "exit 1 if geomean speedup falls below this (0: no gate)")
	flag.Parse()
	if *before == "" || *after == "" {
		fmt.Fprintln(os.Stderr, "benchjson: -before and -after are required")
		os.Exit(2)
	}

	b, err := parseFile(*before)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	a, err := parseFile(*after)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	rep := compare(*before, *after, b, a)
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// The gate runs after the report is written so a failing run still
	// leaves the numbers on disk for inspection.
	if gateFails(rep, *minSpeedup) {
		fmt.Fprintf(os.Stderr, "benchjson: geomean speedup %.2f below required %.2f\n",
			rep.GeomeanSpeedup, *minSpeedup)
		os.Exit(1)
	}
}

// gateFails reports whether the -min-speedup gate rejects the report: a
// ratio below the floor, or (with a gate set) no comparable benchmarks
// at all — an empty comparison must not pass as a 0 < floor "success".
func gateFails(rep Report, minSpeedup float64) bool {
	return minSpeedup > 0 && rep.GeomeanSpeedup < minSpeedup
}

// parseFile collects all benchmark result lines, keyed by benchmark
// name with the -P GOMAXPROCS suffix stripped so runs from machines
// with different core counts compare.
func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	res := make(map[string][]sample)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, s, ok := parseLine(sc.Text())
		if ok {
			res[name] = append(res[name], s)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return res, nil
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   100   12345 ns/op   678 B/op   9 allocs/op
//
// The B/op and allocs/op columns are optional (absent without
// -benchmem).
func parseLine(line string) (string, sample, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", sample{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	var s sample
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", sample{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsOp, seen = v, true
		case "B/op":
			s.bytesOp = v
		case "allocs/op":
			s.allocsOp = v
		}
	}
	return name, s, seen
}

func compare(beforePath, afterPath string, b, a map[string][]sample) Report {
	names := make(map[string]bool, len(b)+len(a))
	for n := range b {
		names[n] = true
	}
	for n := range a {
		names[n] = true
	}
	ordered := make([]string, 0, len(names))
	for n := range names {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	rep := Report{Before: beforePath, After: afterPath}
	var logSpeed, logAllocs float64
	var nSpeed, nAllocs int
	for _, n := range ordered {
		row := Row{Name: n}
		if bs, ok := b[n]; ok {
			m := medians(bs)
			row.BeforeNsOp, row.BeforeBytesOp, row.BeforeAllocsOp = m.nsOp, m.bytesOp, m.allocsOp
		}
		if as, ok := a[n]; ok {
			m := medians(as)
			row.AfterNsOp, row.AfterBytesOp, row.AfterAllocsOp = m.nsOp, m.bytesOp, m.allocsOp
		}
		if row.BeforeNsOp > 0 && row.AfterNsOp > 0 {
			ratio := row.BeforeNsOp / row.AfterNsOp
			row.Speedup = round2(ratio)
			if lr, ok := geoTerm(ratio); ok {
				logSpeed += lr
				nSpeed++
			}
		}
		if row.BeforeAllocsOp > 0 && row.AfterAllocsOp > 0 {
			ratio := row.BeforeAllocsOp / row.AfterAllocsOp
			row.AllocsRatio = round2(ratio)
			if lr, ok := geoTerm(ratio); ok {
				logAllocs += lr
				nAllocs++
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, row)
	}
	if nSpeed > 0 {
		rep.GeomeanSpeedup = round2(math.Exp(logSpeed / float64(nSpeed)))
	}
	if nAllocs > 0 {
		rep.GeomeanAllocsRatio = round2(math.Exp(logAllocs / float64(nAllocs)))
	}
	return rep
}

// medians aggregates repeated runs per metric independently — the run
// with the median time need not be the one with the median allocations
// (allocations are usually identical across runs anyway).
func medians(ss []sample) sample {
	pick := func(get func(sample) float64) float64 {
		vs := make([]float64, len(ss))
		for i, s := range ss {
			vs[i] = get(s)
		}
		sort.Float64s(vs)
		mid := len(vs) / 2
		if len(vs)%2 == 1 {
			return vs[mid]
		}
		return (vs[mid-1] + vs[mid]) / 2
	}
	return sample{
		nsOp:     pick(func(s sample) float64 { return s.nsOp }),
		bytesOp:  pick(func(s sample) float64 { return s.bytesOp }),
		allocsOp: pick(func(s sample) float64 { return s.allocsOp }),
	}
}

// geoTerm returns ln(ratio) and whether the ratio may contribute to a
// geometric mean: it must be finite and strictly positive. A failed or
// truncated benchmark line can yield a zero, infinite, or NaN ratio —
// and a single such term would silently turn the whole report's
// geomean into NaN, so those rows are reported but excluded here.
func geoTerm(ratio float64) (float64, bool) {
	if !(ratio > 0) || math.IsInf(ratio, 0) {
		return 0, false
	}
	return math.Log(ratio), true
}

// round2 rounds to two decimals; non-finite or sub-0.01 values report
// as 0 rather than overflowing the int64 conversion.
func round2(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v*100+0.5 > math.MaxInt64 {
		return 0
	}
	return float64(int64(v*100+0.5)) / 100
}
