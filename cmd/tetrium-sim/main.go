// Command tetrium-sim runs one geo-distributed analytics simulation and
// prints per-job and aggregate results.
//
// Usage:
//
//	tetrium-sim [flags]
//
//	-cluster   ec2-8 | ec2-30 | sim-50 | paper | osp     (default ec2-8)
//	-trace     tpcds | bigdata | prod                     (default tpcds)
//	-trace-file path to a JSON trace (overrides -trace; may embed a cluster)
//	-scheduler tetrium | iridium | in-place | centralized | tetris
//	-jobs      number of jobs to generate                 (default 20)
//	-rho       WAN budget knob in [0,1]                   (default 1)
//	-eps       fairness knob in [0,1]                     (default 1)
//	-seed      generation seed                            (default 1)
//	-drop      site:frac:time capacity drop, repeatable
//	-update-k  sites updatable after a drop (0 = all)
//	-fault-spec deterministic fault injection (internal/fault grammar)
//	-fault-seed fault injector seed                      (default 1)
//	-check     verify LP certificates and simulator invariants
//	-v         per-job output
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"tetrium"
	"tetrium/internal/cluster"
	"tetrium/internal/metrics"
	"tetrium/internal/trace"
	"tetrium/internal/units"
)

type dropFlags []tetrium.Drop

func (d *dropFlags) String() string { return fmt.Sprint(*d) }

func (d *dropFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want site:frac:time, got %q", v)
	}
	site, err := strconv.Atoi(parts[0])
	if err != nil {
		return err
	}
	frac, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return err
	}
	at, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return err
	}
	*d = append(*d, tetrium.Drop{Site: site, Frac: frac, Time: at})
	return nil
}

func main() {
	var (
		clusterName = flag.String("cluster", "ec2-8", "cluster preset: ec2-8|ec2-30|sim-50|paper|osp")
		traceName   = flag.String("trace", "tpcds", "workload: tpcds|bigdata|prod")
		traceFile   = flag.String("trace-file", "", "JSON trace file (overrides -trace)")
		schedName   = flag.String("scheduler", "tetrium", "tetrium|iridium|in-place|centralized|tetris")
		jobs        = flag.Int("jobs", 20, "number of jobs")
		rho         = flag.Float64("rho", 1, "WAN budget knob (0..1)")
		eps         = flag.Float64("eps", 1, "fairness knob (0..1)")
		seed        = flag.Int64("seed", 1, "generation seed")
		updateK     = flag.Int("update-k", 0, "sites updatable after a drop (0 = all)")
		verbose     = flag.Bool("v", false, "per-job output")
		timeline    = flag.String("timeline", "", "write a per-task timeline (TSV) to this file")
		faultSpec   = flag.String("fault-spec", "", "fault injection spec, e.g. \"crash@10s:site=1,dur=30s;straggle:p=0.05,x=4\"")
		faultSeed   = flag.Int64("fault-seed", 1, "fault injector seed (straggler lottery)")
		checkRun    = flag.Bool("check", false, "verify LP certificates and simulator invariants throughout the run")
	)
	var drops dropFlags
	flag.Var(&drops, "drop", "site:frac:time capacity drop (repeatable)")
	flag.Parse()

	cl, jobList, err := loadWorkload(*clusterName, *traceName, *traceFile, *jobs, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-sim:", err)
		os.Exit(1)
	}
	sched, err := tetrium.ParseScheduler(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-sim:", err)
		os.Exit(1)
	}

	res, err := tetrium.Simulate(tetrium.Options{
		Cluster:   cl,
		Jobs:      jobList,
		Scheduler: sched,
		Rho:       *rho, RhoSet: true,
		Eps: *eps, EpsSet: true,
		Seed:           *seed,
		Drops:          drops,
		UpdateK:        *updateK,
		FaultSpec:      *faultSpec,
		FaultSeed:      *faultSeed,
		RecordTimeline: *timeline != "",
		Check:          *checkRun,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-sim:", err)
		os.Exit(1)
	}

	if *verbose {
		fmt.Printf("%-10s %10s %10s %12s %10s\n", "job", "arrival", "response", "completion", "WAN (GB)")
		jobsSorted := append([]tetrium.JobResult(nil), res.Jobs...)
		sort.Slice(jobsSorted, func(a, b int) bool { return jobsSorted[a].ID < jobsSorted[b].ID })
		for _, j := range jobsSorted {
			fmt.Printf("%-10s %10.1f %10.1f %12.1f %10.2f\n",
				j.Name, j.Arrival, j.Response, j.Completion, j.WANBytes/units.GB)
		}
		fmt.Println()
	}

	resp := res.Responses()
	fmt.Printf("scheduler        %s\n", sched)
	fmt.Printf("jobs             %d\n", len(res.Jobs))
	fmt.Printf("mean response    %.1f s\n", res.MeanResponse())
	fmt.Printf("median response  %.1f s\n", metrics.Median(resp))
	fmt.Printf("p90 response     %.1f s\n", metrics.Percentile(resp, 90))
	fmt.Printf("makespan         %.1f s\n", res.Makespan)
	fmt.Printf("WAN usage        %.2f GB\n", res.WANBytes/units.GB)

	if *timeline != "" {
		f, err := os.Create(*timeline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrium-sim:", err)
			os.Exit(1)
		}
		if _, err := res.Timeline.WriteTo(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "tetrium-sim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "tetrium-sim:", err)
			os.Exit(1)
		}
		fmt.Printf("timeline         %s (%d events)\n", *timeline, len(res.Timeline))
	}
}

func loadWorkload(clusterName, traceName, traceFile string, jobs int, seed int64) (*tetrium.Cluster, []*tetrium.Job, error) {
	cl, err := cluster.Preset(clusterName, seed)
	if err != nil {
		return nil, nil, err
	}
	if traceFile != "" {
		fileCl, jobList, err := trace.ReadFile(traceFile)
		if err != nil {
			return nil, nil, err
		}
		if fileCl != nil {
			cl = fileCl
		}
		return cl, jobList, nil
	}
	var kind tetrium.TraceKind
	switch traceName {
	case "tpcds":
		kind = tetrium.TraceTPCDS
	case "bigdata":
		kind = tetrium.TraceBigData
	case "prod":
		kind = tetrium.TraceProduction
	default:
		return nil, nil, fmt.Errorf("unknown trace %q", traceName)
	}
	return cl, tetrium.GenerateTrace(kind, cl, jobs, seed), nil
}
