package main

import (
	"path/filepath"
	"testing"

	"tetrium"
	"tetrium/internal/trace"
	"tetrium/internal/workload"
)

func TestParseScheduler(t *testing.T) {
	// The CLI delegates to the facade's shared parser.
	cases := map[string]tetrium.Scheduler{
		"tetrium":     tetrium.SchedulerTetrium,
		"iridium":     tetrium.SchedulerIridium,
		"in-place":    tetrium.SchedulerInPlace,
		"centralized": tetrium.SchedulerCentralized,
		"tetris":      tetrium.SchedulerTetris,
	}
	for name, want := range cases {
		got, err := tetrium.ParseScheduler(name)
		if err != nil || got != want {
			t.Errorf("ParseScheduler(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := tetrium.ParseScheduler("nope"); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestDropFlags(t *testing.T) {
	var d dropFlags
	if err := d.Set("3:0.4:120"); err != nil {
		t.Fatal(err)
	}
	if len(d) != 1 || d[0].Site != 3 || d[0].Frac != 0.4 || d[0].Time != 120 {
		t.Errorf("parsed drop = %+v", d)
	}
	for _, bad := range []string{"3:0.4", "x:0.4:120", "3:y:120", "3:0.4:z"} {
		var b dropFlags
		if err := b.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	if d.String() == "" {
		t.Error("String empty")
	}
}

func TestLoadWorkloadPresets(t *testing.T) {
	for _, cl := range []string{"ec2-8", "ec2-30", "sim-50", "paper", "osp"} {
		c, jobs, err := loadWorkload(cl, "bigdata", "", 3, 1)
		if err != nil {
			t.Fatalf("%s: %v", cl, err)
		}
		if c.N() == 0 || len(jobs) != 3 {
			t.Fatalf("%s: %d sites, %d jobs", cl, c.N(), len(jobs))
		}
	}
	for _, tr := range []string{"tpcds", "bigdata", "prod"} {
		if _, jobs, err := loadWorkload("ec2-8", tr, "", 2, 1); err != nil || len(jobs) != 2 {
			t.Fatalf("%s: %v", tr, err)
		}
	}
	if _, _, err := loadWorkload("bogus", "tpcds", "", 1, 1); err == nil {
		t.Error("unknown cluster accepted")
	}
	if _, _, err := loadWorkload("ec2-8", "bogus", "", 1, 1); err == nil {
		t.Error("unknown trace accepted")
	}
}

func TestLoadWorkloadTraceFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.json")
	c, _, err := loadWorkload("paper", "bigdata", "", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	jobs := workload.Generate(workload.BigData(c.N(), 2, 1))
	if err := trace.WriteFile(path, c, jobs, "test"); err != nil {
		t.Fatal(err)
	}
	cl, loaded, err := loadWorkload("ec2-8", "tpcds", path, 99, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The embedded cluster overrides the preset; jobs come from the file.
	if cl.N() != 3 || len(loaded) != 2 {
		t.Errorf("got %d sites, %d jobs", cl.N(), len(loaded))
	}
	if _, _, err := loadWorkload("ec2-8", "tpcds", "/nonexistent.json", 1, 1); err == nil {
		t.Error("missing trace file accepted")
	}
}
