package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"tetrium"
	"tetrium/internal/cluster"
	"tetrium/internal/metrics"
)

// SchedulerResult is one scheduler's row in the -json output — the
// machine-readable perf trajectory (BENCH_*.json) record.
type SchedulerResult struct {
	Scheduler   string  `json:"scheduler"`
	Jobs        int     `json:"jobs"`
	MeanJCTSec  float64 `json:"mean_jct_s"`
	MedianJCTs  float64 `json:"median_jct_s"`
	P95JCTSec   float64 `json:"p95_jct_s"`
	WANGB       float64 `json:"wan_gb"`
	MakespanSec float64 `json:"makespan_s"`
	WallMillis  int64   `json:"wall_ms"`
}

// JSONReport is the -json file layout.
type JSONReport struct {
	Cluster    string            `json:"cluster"`
	Trace      string            `json:"trace"`
	NumJobs    int               `json:"num_jobs"`
	Seed       int64             `json:"seed"`
	Quick      bool              `json:"quick"`
	Schedulers []SchedulerResult `json:"schedulers"`
}

// runJSONBench runs the per-scheduler comparison on a fixed
// configuration and writes machine-readable results to path.
func runJSONBench(path string, quick bool, seed int64, schedNames string) error {
	cl := cluster.EC2EightRegions()
	numJobs := 50
	if quick {
		numJobs = 12
	}
	jobs := tetrium.GenerateTrace(tetrium.TraceTPCDS, cl, numJobs, seed)

	var scheds []tetrium.Scheduler
	if schedNames == "" {
		scheds = tetrium.Schedulers()
	} else {
		for _, n := range strings.Split(schedNames, ",") {
			s, err := tetrium.ParseScheduler(strings.TrimSpace(n))
			if err != nil {
				return err
			}
			scheds = append(scheds, s)
		}
	}

	report := JSONReport{
		Cluster: "ec2-8",
		Trace:   "tpcds",
		NumJobs: numJobs,
		Seed:    seed,
		Quick:   quick,
	}
	for _, s := range scheds {
		start := time.Now()
		res, err := tetrium.Simulate(tetrium.Options{
			Cluster:   cl,
			Jobs:      jobs,
			Scheduler: s,
			Seed:      seed,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", s, err)
		}
		resp := res.Responses()
		report.Schedulers = append(report.Schedulers, SchedulerResult{
			Scheduler:   s.String(),
			Jobs:        len(res.Jobs),
			MeanJCTSec:  res.MeanResponse(),
			MedianJCTs:  metrics.Median(resp),
			P95JCTSec:   metrics.Percentile(resp, 95),
			WANGB:       res.WANBytes / tetrium.GB,
			MakespanSec: res.Makespan,
			WallMillis:  time.Since(start).Milliseconds(),
		})
		fmt.Printf("  [json %-11s mean=%.1fs p95=%.1fs wan=%.2fGB in %v]\n",
			s, res.MeanResponse(), metrics.Percentile(resp, 95),
			res.WANBytes/tetrium.GB, time.Since(start).Round(time.Millisecond))
	}

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
