// Command tetrium-bench regenerates every table and figure of the
// paper's evaluation (§6) plus its worked examples, rendering each as an
// aligned text table with a note recalling the paper's reported result.
//
// Usage:
//
//	tetrium-bench [-quick] [-seed N] [-only fig5,fig8,...] [-o results.txt]
//	tetrium-bench -json bench.json [-json-schedulers tetrium,iridium]
//
// -quick shrinks every experiment for a fast smoke run; the default
// sizes are the repository's full reproduction scale (recorded in
// EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"tetrium/internal/exp"
)

type experiment struct {
	name string
	run  func(exp.Options, io.Writer) error
}

func one(f func(exp.Options) (*exp.Table, error)) func(exp.Options, io.Writer) error {
	return func(o exp.Options, w io.Writer) error {
		t, err := f(o)
		if err != nil {
			return err
		}
		t.Render(w)
		return nil
	}
}

var experiments = []experiment{
	{"fig2", one(exp.Fig2)},
	{"fig3", one(exp.Fig3)},
	{"sec2.2", one(exp.Sec22)},
	{"fig5+6", func(o exp.Options, w io.Writer) error {
		a, b, err := exp.Fig56(o)
		if err != nil {
			return err
		}
		a.Render(w)
		b.Render(w)
		return nil
	}},
	{"fig7", one(exp.Fig7)},
	{"fig8", func(o exp.Options, w io.Writer) error {
		a, b, err := exp.Fig8(o)
		if err != nil {
			return err
		}
		a.Render(w)
		b.Render(w)
		return nil
	}},
	{"tetris", one(exp.TetrisCompare)},
	{"fig9", one(exp.Fig9)},
	{"fig10ab", one(exp.Fig10ab)},
	{"fig10c", one(exp.Fig10c)},
	{"fig11", one(exp.Fig11)},
	{"fig12", func(o exp.Options, w io.Writer) error {
		tabs, err := exp.Fig12(o)
		if err != nil {
			return err
		}
		for _, t := range tabs {
			t.Render(w)
		}
		return nil
	}},
	{"sec6.4", one(exp.SkewSweep)},
	{"sec3.4", one(exp.ForwardReverse)},
	{"sec8", one(exp.Extensions)},
}

func main() {
	quick := flag.Bool("quick", false, "run reduced-size experiments")
	seed := flag.Int64("seed", 1, "trace and cluster generation seed")
	only := flag.String("only", "", "comma-separated experiment names (default: all)")
	out := flag.String("o", "", "also write results to this file")
	jsonOut := flag.String("json", "", "write a machine-readable per-scheduler comparison to this file (skips the figure experiments unless -only is given)")
	jsonScheds := flag.String("json-schedulers", "", "comma-separated schedulers for -json (default: all)")
	flag.Parse()

	if *jsonOut != "" {
		if err := runJSONBench(*jsonOut, *quick, *seed, *jsonScheds); err != nil {
			fmt.Fprintln(os.Stderr, "tetrium-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("tetrium-bench: wrote %s\n", *jsonOut)
		if *only == "" {
			return
		}
	}

	var writers []io.Writer = []io.Writer{os.Stdout}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrium-bench:", err)
			os.Exit(1)
		}
		defer f.Close()
		writers = append(writers, f)
	}
	w := io.MultiWriter(writers...)

	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}

	opts := exp.Options{Quick: *quick, Seed: *seed}
	mode := "full"
	if *quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "tetrium-bench: reproducing the EuroSys'18 Tetrium evaluation (%s mode, seed %d)\n\n", mode, *seed)

	failed := false
	for _, e := range experiments {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		start := time.Now()
		if err := e.run(opts, w); err != nil {
			fmt.Fprintf(os.Stderr, "tetrium-bench: %s: %v\n", e.name, err)
			failed = true
			continue
		}
		fmt.Fprintf(w, "  [%s completed in %v]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
