// Command tetrium-trace generates, inspects, and validates synthetic
// workload traces in the repository's JSON format.
//
// Usage:
//
//	tetrium-trace gen  [-trace tpcds|bigdata|prod] [-cluster ...] [-jobs N] [-seed N] -o trace.json
//	tetrium-trace info trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"tetrium/internal/cluster"
	"tetrium/internal/metrics"
	"tetrium/internal/trace"
	"tetrium/internal/units"
	"tetrium/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "info":
		info(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tetrium-trace gen  [-trace tpcds|bigdata|prod] [-cluster ec2-8|ec2-30|sim-50|paper] [-jobs N] [-seed N] -o trace.json
  tetrium-trace info trace.json`)
	os.Exit(2)
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	traceName := fs.String("trace", "prod", "workload family")
	clusterName := fs.String("cluster", "ec2-8", "cluster preset (embedded in the file)")
	jobs := fs.Int("jobs", 50, "number of jobs")
	seed := fs.Int64("seed", 1, "generation seed")
	out := fs.String("o", "", "output path (required)")
	fs.Parse(args)
	if *out == "" {
		fmt.Fprintln(os.Stderr, "tetrium-trace: -o is required")
		os.Exit(2)
	}

	cl, err := cluster.Preset(*clusterName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-trace:", err)
		os.Exit(2)
	}

	var cfg workload.GenConfig
	switch *traceName {
	case "tpcds":
		cfg = workload.TPCDS(cl.N(), *jobs, *seed)
	case "bigdata":
		cfg = workload.BigData(cl.N(), *jobs, *seed)
	case "prod":
		cfg = workload.ProdTrace(cl.N(), *jobs, *seed)
	default:
		fmt.Fprintf(os.Stderr, "tetrium-trace: unknown trace %q\n", *traceName)
		os.Exit(2)
	}
	jobsList := workload.Generate(cfg)
	comment := fmt.Sprintf("%s trace, %d jobs, %d sites, seed %d", *traceName, *jobs, cl.N(), *seed)
	if err := trace.WriteFile(*out, cl, jobsList, comment); err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d jobs (%d sites) to %s\n", len(jobsList), cl.N(), *out)
}

func info(args []string) {
	if len(args) != 1 {
		usage()
	}
	cl, jobs, err := trace.ReadFile(args[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-trace:", err)
		os.Exit(1)
	}
	if cl != nil {
		fmt.Printf("cluster: %d sites, %d total slots\n", cl.N(), cl.TotalSlots())
	} else {
		fmt.Println("cluster: none embedded")
	}
	var stages, tasks []float64
	var input []float64
	sites := 0
	if cl != nil {
		sites = cl.N()
	}
	for _, j := range jobs {
		stages = append(stages, float64(j.NumStages()))
		tasks = append(tasks, float64(j.TotalTasks()))
		input = append(input, j.TotalInput())
		for _, st := range j.Stages {
			for _, t := range st.Tasks {
				if t.Src+1 > sites {
					sites = t.Src + 1
				}
			}
		}
	}
	fmt.Printf("jobs: %d over %d sites\n", len(jobs), sites)
	stageQ := metrics.Percentiles(stages, 50, 100)
	taskQ := metrics.Percentiles(tasks, 50, 90, 100)
	fmt.Printf("stages/job: median %.0f, max %.0f\n", stageQ[0], stageQ[1])
	fmt.Printf("tasks/job:  median %.0f, p90 %.0f, max %.0f\n", taskQ[0], taskQ[1], taskQ[2])
	fmt.Printf("input/job:  median %.2f GB, total %.2f GB\n",
		metrics.Median(input)/units.GB, sum(input)/units.GB)
	if len(jobs) > 0 {
		fmt.Printf("arrivals:   first %.1f s, last %.1f s\n", jobs[0].Arrival, jobs[len(jobs)-1].Arrival)
	}
}

func sum(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}
