package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"syscall"
	"testing"
	"time"

	"tetrium/internal/engine/api"
	"tetrium/internal/federation"
)

// TestFederationCrashRestart is the sharded analogue of
// TestCrashRestart: a 2-shard journaled server is SIGKILLed with jobs
// in flight on both shards, then restarted against the same journal
// prefix. Every accepted job must reappear under its federation ID and
// complete exactly once — the per-shard journals recover independently.
func TestFederationCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	jpath := filepath.Join(t.TempDir(), "serve.journal")

	cmd1, base1, _ := helperServer(t, "-shards", "2", "-journal", jpath, "-time-scale", "5")
	const n = 20
	ids := make(map[int]bool)
	shardsHit := make(map[int]bool)
	for i := 0; i < n; i++ {
		resp, st := postJobHTTP(t, base1, testJobBody(t, fmt.Sprintf("fed-survivor-%d", i)))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids[st.ID] = true
		shardsHit[st.ID%2] = true // gid = local*N + shard
	}
	if len(ids) != n {
		t.Fatalf("accepted %d distinct IDs, want %d", len(ids), n)
	}
	if len(shardsHit) != 2 {
		t.Fatalf("all %d jobs routed to one shard; hash spread broken", n)
	}
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	cmd1.Wait()

	// Both shard journals must exist on disk.
	for i := 0; i < 2; i++ {
		if _, err := os.Stat(fmt.Sprintf("%s.shard%d", jpath, i)); err != nil {
			t.Fatalf("shard %d journal missing after kill: %v", i, err)
		}
	}

	cmd2, base2, out2 := helperServer(t, "-shards", "2", "-journal", jpath, "-time-scale", "0")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()

	readyDeadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base2 + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(readyDeadline) {
			t.Fatalf("server never became ready; output:\n%s", out2.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	doneDeadline := time.Now().Add(60 * time.Second)
	for {
		jobs := fetchJobs(t, base2)
		if len(jobs) != n {
			t.Fatalf("restarted federation lists %d jobs, want %d", len(jobs), n)
		}
		seen := make(map[int]int)
		done := 0
		for _, js := range jobs {
			seen[js.ID]++
			if !ids[js.ID] {
				t.Fatalf("job ID %d was never accepted before the kill", js.ID)
			}
			if js.State == "done" {
				done++
			}
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("job %d appears %d times", id, c)
			}
		}
		if done == n {
			break
		}
		if time.Now().After(doneDeadline) {
			t.Fatalf("only %d/%d jobs done after restart", done, n)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The router-level endpoints are live on the restarted fleet.
	var fs federation.FederationStatus
	fedResp, err := http.Get(base2 + "/v1/federation")
	if err != nil {
		t.Fatalf("GET /v1/federation: %v", err)
	}
	derr := json.NewDecoder(fedResp.Body).Decode(&fs)
	fedResp.Body.Close()
	if derr != nil {
		t.Fatalf("decode /v1/federation: %v", derr)
	}
	if fs.Shards != 2 || len(fs.Members) != 2 || !fs.Journal {
		t.Fatalf("federation status = %+v, want 2 journaled shards", fs)
	}
}

// TestShardsOneMatchesSingleEngine guards the bit-compatibility
// contract: -shards 1 must behave exactly like the flagless
// single-engine server. Identical submissions against both must yield
// identical /v1/jobs (volatile timestamps scrubbed) and /v1/cluster
// responses.
func TestShardsOneMatchesSingleEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	const n = 8
	run := func(extra ...string) ([]api.JobStatus, api.ClusterStatus) {
		args := append([]string{"-time-scale", "0"}, extra...)
		cmd, base, out := helperServer(t, args...)
		defer func() {
			cmd.Process.Signal(syscall.SIGTERM)
			cmd.Wait()
		}()
		for i := 0; i < n; i++ {
			resp, _ := postJobHTTP(t, base, testJobBody(t, fmt.Sprintf("compat-%d", i)))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit %d: status %d\noutput:\n%s", i, resp.StatusCode, out.String())
			}
		}
		deadline := time.Now().Add(60 * time.Second)
		for {
			jobs := fetchJobs(t, base)
			done := 0
			for _, js := range jobs {
				if js.State == "done" {
					done++
				}
			}
			if len(jobs) == n && done == n {
				var cs api.ClusterStatus
				resp, err := http.Get(base + "/v1/cluster")
				if err != nil {
					t.Fatalf("GET /v1/cluster: %v", err)
				}
				derr := json.NewDecoder(resp.Body).Decode(&cs)
				resp.Body.Close()
				if derr != nil {
					t.Fatalf("decode cluster: %v", derr)
				}
				return jobs, cs
			}
			if time.Now().After(deadline) {
				t.Fatalf("only %d/%d jobs done", done, n)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	plainJobs, plainCl := run()
	shardJobs, shardCl := run("-shards", "1")

	scrub := func(jobs []api.JobStatus) []api.JobStatus {
		sort.Slice(jobs, func(i, j int) bool { return jobs[i].ID < jobs[j].ID })
		for i := range jobs {
			jobs[i].SubmittedUnixMs = 0
			jobs[i].PlacedUnixMs = 0
			jobs[i].FinishedUnixMs = 0
			jobs[i].SubmitToPlaceMs = 0
			jobs[i].ResponseSeconds = 0
			jobs[i].Stages = nil // per-stage timings are wall-clock dependent
		}
		return jobs
	}
	pj, _ := json.Marshal(scrub(plainJobs))
	sj, _ := json.Marshal(scrub(shardJobs))
	if string(pj) != string(sj) {
		t.Errorf("-shards 1 diverges from single engine on /v1/jobs:\nplain:  %s\nshards: %s", pj, sj)
	}
	pc, _ := json.Marshal(plainCl)
	sc, _ := json.Marshal(shardCl)
	if string(pc) != string(sc) {
		t.Errorf("-shards 1 diverges from single engine on /v1/cluster:\nplain:  %s\nshards: %s", pc, sc)
	}
}

func fetchJobs(t *testing.T, base string) []api.JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs")
	if err != nil {
		t.Fatalf("GET /v1/jobs: %v", err)
	}
	var jobs []api.JobStatus
	derr := json.NewDecoder(resp.Body).Decode(&jobs)
	resp.Body.Close()
	if derr != nil {
		t.Fatalf("decode /v1/jobs: %v", derr)
	}
	return jobs
}
