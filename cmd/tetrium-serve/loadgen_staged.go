package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tetrium"
	"tetrium/internal/fleet"
	"tetrium/internal/metrics"
)

// runStagedLoadgen is the -clients/-stages multi-tenant scenario: each
// stage runs N concurrent clients, each submitting as its own tenant
// ("client-0", "client-1", ...), so the server's /v1/analytics store has
// real per-tenant attribution to report. After the last stage it prints
// the per-stage latency quantiles followed by the analytics summary
// table (per-tenant slot-seconds, WAN bytes, shares).
//
// -stages "1,3,10" ramps the client count across stages; -clients N
// alone is shorthand for a single stage of N clients. Each stage
// submits -jobs jobs split round-robin across its clients.
func runStagedLoadgen(ctx context.Context, seed int64) error {
	stages, err := parseStages()
	if err != nil {
		return err
	}
	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*lgTarget, "/")

	cl, err := fetchCluster(client, base)
	if err != nil {
		return fmt.Errorf("fetch cluster: %w", err)
	}
	var kind tetrium.TraceKind
	switch *lgTrace {
	case "tpcds":
		kind = tetrium.TraceTPCDS
	case "bigdata":
		kind = tetrium.TraceBigData
	case "prod":
		kind = tetrium.TraceProduction
	default:
		return fmt.Errorf("unknown trace %q", *lgTrace)
	}

	fmt.Printf("loadgen: staged mode, stages %v, %d jobs/stage (%s), %d sites\n",
		stages, *lgJobs, *lgTrace, cl.N())

	type stageReport struct {
		clients int
		jobs    int
		wall    time.Duration
		q       []float64
	}
	var reports []stageReport
	for si, nClients := range stages {
		// A distinct seed per stage keeps the job mix varied while the
		// whole run stays reproducible.
		jobs := tetrium.GenerateTrace(kind, cl, *lgJobs, seed+int64(si)*1009)

		work := make(chan *tetrium.Job)
		type result struct {
			id  int
			err error
		}
		results := make(chan result, len(jobs))
		var wg sync.WaitGroup
		for c := 0; c < nClients; c++ {
			wg.Add(1)
			tenant := fmt.Sprintf("client-%d", c)
			go func() {
				defer wg.Done()
				for j := range work {
					j.Tenant = tenant
					id, err := submitJob(client, base, j)
					results <- result{id: id, err: err}
				}
			}()
		}

		start := time.Now()
		interrupted := false
	feed:
		for _, j := range jobs {
			select {
			case work <- j:
			case <-ctx.Done():
				interrupted = true
				break feed
			}
		}
		close(work)
		wg.Wait()
		wall := time.Since(start)
		close(results)

		var ids []int
		for r := range results {
			if r.err != nil {
				return fmt.Errorf("stage %d submit: %w", si+1, r.err)
			}
			ids = append(ids, r.id)
		}
		var latencies []float64
		for _, id := range ids {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			ms, err := waitPlaced(ctx, client, base, id, *lgWait)
			if err != nil {
				if ctx.Err() != nil {
					interrupted = true
					break
				}
				return fmt.Errorf("stage %d job %d: %w", si+1, id, err)
			}
			latencies = append(latencies, ms)
		}
		if len(latencies) == 0 {
			return fmt.Errorf("stage %d: interrupted before any job was placed", si+1)
		}
		q := metrics.Percentiles(latencies, 50, 95, 99)
		reports = append(reports, stageReport{clients: nClients, jobs: len(latencies), wall: wall, q: q})
		fmt.Printf("loadgen: stage %d/%d: %d clients, %d jobs placed in %.1fs\n",
			si+1, len(stages), nClients, len(latencies), wall.Seconds())
		if interrupted {
			fmt.Println("loadgen: interrupted — reporting completed stages only")
			break
		}
	}

	fmt.Println("\nstage  clients  jobs  p50(ms)  p95(ms)  p99(ms)")
	for i, r := range reports {
		fmt.Printf("%5d  %7d  %4d  %7.2f  %7.2f  %7.2f\n",
			i+1, r.clients, r.jobs, r.q[0], r.q[1], r.q[2])
	}

	return printAnalyticsSummary(client, base)
}

// printAnalyticsSummary fetches /v1/analytics/summary and prints the
// per-tenant attribution table. A 404 means the server runs without
// -analytics; that's reported, not fatal, so plain servers still work
// with staged mode.
func printAnalyticsSummary(client *http.Client, base string) error {
	resp, err := client.Get(base + "/v1/analytics/summary")
	if err != nil {
		return fmt.Errorf("fetch analytics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		fmt.Println("\nanalytics: server runs without -analytics; no per-tenant table")
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /v1/analytics/summary: %s", resp.Status)
	}
	var snap fleet.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decode analytics summary: %w", err)
	}

	fmt.Printf("\nanalytics: fleet totals: %d jobs done, %.3f slot-seconds, %.3f WAN bytes\n",
		snap.Totals.Jobs, snap.Totals.SlotSeconds, snap.Totals.WANBytes)
	fmt.Println("tenant           done  slot-sec  slot%   wan-bytes   wan%")
	for _, t := range snap.ResourceHogs.Tenants {
		fmt.Printf("%-15s  %4d  %8.3f  %5.1f  %10.3f  %5.1f\n",
			t.Tenant, t.Done, t.SlotSeconds, t.SlotShare*100, t.WANBytes, t.WANShare*100)
	}
	if n := len(snap.EstimateAccuracy.Tenants); n > 0 {
		o := snap.EstimateAccuracy.Overall
		fmt.Printf("analytics: estimate error (rel): n=%d p50=%.3f p95=%.3f p99=%.3f\n",
			o.Count, o.P50, o.P95, o.P99)
	}
	return nil
}

func parseStages() ([]int, error) {
	if *lgStages == "" {
		n := *lgClients
		if n <= 0 {
			n = 1
		}
		return []int{n}, nil
	}
	var stages []int
	for _, part := range strings.Split(*lgStages, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -stages entry %q (want positive client counts, e.g. \"1,3,10\")", part)
		}
		stages = append(stages, n)
	}
	return stages, nil
}
