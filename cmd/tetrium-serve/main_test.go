package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"tetrium/internal/engine/api"
	"tetrium/internal/journal"
	"tetrium/internal/workload"
)

// TestMain doubles as the server process for the subprocess tests: when
// re-exec'd with the helper env var set, the test binary runs the real
// main() so SIGKILL and SIGTERM hit an actual tetrium-serve.
func TestMain(m *testing.M) {
	if os.Getenv("TETRIUM_SERVE_HELPER") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// helperServer spawns this test binary as a tetrium-serve process with
// the given extra flags, waits for the listen banner, and returns the
// base URL plus the running command and its captured output.
func helperServer(t *testing.T, extra ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-cluster", "paper"}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "TETRIUM_SERVE_HELPER=1")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start helper: %v", err)
	}

	var buf bytes.Buffer
	banner := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			buf.WriteString(line + "\n")
			if strings.Contains(line, "listening on ") {
				select {
				case banner <- line:
				default:
				}
			}
		}
	}()
	select {
	case line := <-banner:
		f := strings.Fields(line) // "tetrium-serve: listening on ADDR (..."
		addr := ""
		for i, w := range f {
			if w == "on" && i+1 < len(f) {
				addr = f[i+1]
			}
		}
		if addr == "" {
			cmd.Process.Kill()
			t.Fatalf("cannot parse listen banner %q", line)
		}
		return cmd, "http://" + addr, &buf
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("server never printed its listen banner; output:\n%s", buf.String())
		return nil, "", nil
	}
}

func testJobBody(t *testing.T, name string) []byte {
	t.Helper()
	st := &workload.Stage{Kind: workload.MapStage, OutputRatio: 0.5, EstCompute: 2}
	for i := 0; i < 4; i++ {
		st.Tasks = append(st.Tasks, workload.TaskSpec{Src: i % 3, Input: 64e6, Compute: 2})
	}
	body, err := json.Marshal(api.FromWorkload(&workload.Job{Name: name, Stages: []*workload.Stage{st}}))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return body
}

func postJobHTTP(t *testing.T, base string, body []byte) (*http.Response, api.JobStatus) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	var st api.JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	resp.Body.Close()
	return resp, st
}

// TestCrashRestart is the ISSUE acceptance test: SIGKILL the server with
// jobs in flight, restart it against the same journal, and every
// accepted job completes exactly once.
func TestCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	jpath := filepath.Join(t.TempDir(), "serve.journal")

	// Server 1: stages run for minutes, so every job is mid-flight when
	// the KILL lands.
	cmd1, base1, _ := helperServer(t, "-journal", jpath, "-time-scale", "5")
	const n = 25
	ids := make(map[int]bool)
	body := testJobBody(t, "crash-survivor")
	for i := 0; i < n; i++ {
		resp, st := postJobHTTP(t, base1, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids[st.ID] = true
	}
	if len(ids) != n {
		t.Fatalf("accepted %d distinct IDs, want %d", len(ids), n)
	}
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no cleanup, no snapshot
		t.Fatalf("kill: %v", err)
	}
	cmd1.Wait()

	// Server 2: replays the journal; instant completion drains the
	// recovered backlog immediately.
	cmd2, base2, out2 := helperServer(t, "-journal", jpath, "-time-scale", "0")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()

	// Readiness flips once replay is done.
	readyDeadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base2 + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(readyDeadline) {
			t.Fatalf("server never became ready; output:\n%s", out2.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every accepted job reappears and completes — exactly once.
	doneDeadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base2 + "/v1/jobs")
		if err != nil {
			t.Fatalf("GET /v1/jobs: %v", err)
		}
		var jobs []api.JobStatus
		derr := json.NewDecoder(resp.Body).Decode(&jobs)
		resp.Body.Close()
		if derr != nil {
			t.Fatalf("decode: %v", derr)
		}
		if len(jobs) != n {
			t.Fatalf("restarted server lists %d jobs, want %d", len(jobs), n)
		}
		seen := make(map[int]int)
		done := 0
		for _, js := range jobs {
			seen[js.ID]++
			if !ids[js.ID] {
				t.Fatalf("job ID %d was never accepted by server 1", js.ID)
			}
			if js.State == "done" {
				done++
			}
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("job %d appears %d times", id, c)
			}
		}
		if done == n {
			break
		}
		if time.Now().After(doneDeadline) {
			t.Fatalf("only %d/%d jobs done after restart", done, n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCrashRestartCorruptJournal extends the SIGKILL story with disk
// damage: after the kill, one journal record is flipped (a torn or
// bit-rotted write) before the restart. Replay must quarantine the bad
// record to the .corrupt sidecar and keep going — the server comes up,
// and at most the one damaged record's job is lost; everything else
// completes exactly once.
func TestCrashRestartCorruptJournal(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	jpath := filepath.Join(t.TempDir(), "serve.journal")

	cmd1, base1, _ := helperServer(t, "-journal", jpath, "-time-scale", "5")
	const n = 10
	ids := make(map[int]bool)
	body := testJobBody(t, "corrupt-survivor")
	for i := 0; i < n; i++ {
		resp, st := postJobHTTP(t, base1, body)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		ids[st.ID] = true
	}
	if err := cmd1.Process.Kill(); err != nil { // SIGKILL: no cleanup, no snapshot
		t.Fatalf("kill: %v", err)
	}
	cmd1.Wait()

	// Record 0 is the generation stamp; record 2 is mid-file — an admit
	// or a placement, either of which replay must survive.
	if err := journal.CorruptRecord(jpath, 2); err != nil {
		t.Fatalf("CorruptRecord: %v", err)
	}

	cmd2, base2, out2 := helperServer(t, "-journal", jpath, "-time-scale", "0")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()

	// Replay continues past the quarantined record: the server readies.
	readyDeadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(base2 + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(readyDeadline) {
			t.Fatalf("server never became ready over damaged journal; output:\n%s", out2.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The damaged line is preserved for forensics, not silently dropped.
	side, err := os.ReadFile(jpath + ".corrupt")
	if err != nil {
		t.Fatalf("quarantine sidecar: %v", err)
	}
	if len(side) == 0 {
		t.Fatal("quarantine sidecar is empty")
	}

	// If the corrupted record was an admit, exactly that job is gone;
	// a corrupted placement loses nothing. Either way no unknown IDs,
	// no duplicates, and every survivor completes.
	doneDeadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base2 + "/v1/jobs")
		if err != nil {
			t.Fatalf("GET /v1/jobs: %v", err)
		}
		var jobs []api.JobStatus
		derr := json.NewDecoder(resp.Body).Decode(&jobs)
		resp.Body.Close()
		if derr != nil {
			t.Fatalf("decode: %v", derr)
		}
		if len(jobs) < n-1 || len(jobs) > n {
			t.Fatalf("restarted server lists %d jobs, want %d or %d", len(jobs), n-1, n)
		}
		seen := make(map[int]int)
		done := 0
		for _, js := range jobs {
			seen[js.ID]++
			if !ids[js.ID] {
				t.Fatalf("job ID %d was never accepted before the crash", js.ID)
			}
			if js.State == "done" {
				done++
			}
		}
		for id, c := range seen {
			if c != 1 {
				t.Fatalf("job %d appears %d times", id, c)
			}
		}
		if done == len(jobs) {
			break
		}
		if time.Now().After(doneDeadline) {
			t.Fatalf("only %d/%d jobs done after corrupt replay", done, len(jobs))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSigtermDrain: jobs running when the signal arrives finish; new
// submissions are refused with 503; the process exits cleanly after
// printing the drain banner. The journal proves the in-flight jobs
// really completed.
func TestSigtermDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	jpath := filepath.Join(t.TempDir(), "serve.journal")
	cmd, base, out := helperServer(t, "-journal", jpath, "-time-scale", "0.05", "-drain-timeout", "60s")

	const n = 3
	body := testJobBody(t, "drainee")
	for i := 0; i < n; i++ {
		if resp, _ := postJobHTTP(t, base, body); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	// While draining, the server still answers but refuses new work. A
	// probe can race the signal and land before admission closes — those
	// get admitted for real, so count them toward the drain total.
	refuseDeadline := time.Now().Add(15 * time.Second)
	refused := false
	admitted := n
	for time.Now().Before(refuseDeadline) {
		resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			break // listener already shut down — drain finished first
		}
		code := resp.StatusCode
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code == http.StatusAccepted {
			admitted++
		}
		if code == http.StatusServiceUnavailable {
			refused = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	werr := cmd.Wait()
	if werr != nil {
		t.Fatalf("server exited with error: %v\noutput:\n%s", werr, out.String())
	}
	output := out.String()
	if !strings.Contains(output, "draining") || !strings.Contains(output, "stopped") {
		t.Errorf("missing drain/stop banners in output:\n%s", output)
	}
	if !refused {
		// The drain may have finished before our first probe landed; the
		// journal check below still proves the drain path ran.
		t.Logf("note: no 503 observed (drain completed before probe)")
	}

	// Every admitted job must have completed before exit.
	jnl, st, err := journal.Open(jpath, 0)
	if err != nil {
		t.Fatalf("journal.Open: %v", err)
	}
	defer jnl.Close()
	if len(st.Live) != 0 {
		t.Errorf("%d jobs still live in journal after drain — running jobs did not finish", len(st.Live))
	}
	if len(st.Done) != admitted {
		t.Errorf("journal has %d done jobs, want %d", len(st.Done), admitted)
	}
}

// TestFaultFlagValidation: a bad -fault-spec must fail fast, not start a
// server with silently-disabled injection.
func TestFaultFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	cmd := exec.CommandContext(ctx, os.Args[0], "-addr", "127.0.0.1:0", "-cluster", "paper", "-fault-spec", "crash@nonsense")
	cmd.Env = append(os.Environ(), "TETRIUM_SERVE_HELPER=1")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("server started despite invalid -fault-spec; output:\n%s", out)
	}
	if !strings.Contains(string(out), "fault") {
		t.Errorf("error output does not mention the fault spec:\n%s", out)
	}
}
