package main

import (
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
)

// TestStagedLoadgen: the -stages multi-client mode ramps tenants across
// stages, prints the per-stage latency table, and reports the server's
// /v1/analytics per-tenant attribution.
func TestStagedLoadgen(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	cmd, base, _ := helperServer(t, "-analytics", "-time-scale", "0")
	defer func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	}()

	lg := exec.Command(os.Args[0],
		"-loadgen", "-target", base, "-stages", "1,2", "-jobs", "5",
		"-rate", "0", "-drop", "", "-trace", "bigdata")
	lg.Env = append(os.Environ(), "TETRIUM_SERVE_HELPER=1")
	out, err := lg.CombinedOutput()
	if err != nil {
		t.Fatalf("staged loadgen: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"staged mode",
		"stage  clients  jobs  p50(ms)  p95(ms)  p99(ms)",
		"analytics: fleet totals:",
		"client-0", // tenant attribution made it back out
		"client-1",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("staged loadgen output missing %q:\n%s", want, s)
		}
	}

	// Against a server without -analytics the mode still works, noting
	// the missing table instead of failing.
	cmd2, base2, _ := helperServer(t, "-time-scale", "0")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	lg2 := exec.Command(os.Args[0],
		"-loadgen", "-target", base2, "-clients", "2", "-jobs", "3",
		"-rate", "0", "-drop", "", "-trace", "bigdata")
	lg2.Env = append(os.Environ(), "TETRIUM_SERVE_HELPER=1")
	out2, err := lg2.CombinedOutput()
	if err != nil {
		t.Fatalf("staged loadgen without analytics: %v\n%s", err, out2)
	}
	if !strings.Contains(string(out2), "without -analytics") {
		t.Errorf("missing no-analytics note:\n%s", out2)
	}
}
