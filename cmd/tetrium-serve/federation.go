package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tetrium"
	"tetrium/internal/engine/api"
	"tetrium/internal/federation"
	"tetrium/internal/workload"
)

// runFederation is the -shards N > 1 server path: N shared-nothing
// engine shards behind the federation router, same lifecycle as the
// single-engine path (serve until SIGINT/SIGTERM, drain, stop).
func runFederation(opts tetrium.EngineOptions, shards int, shardBy, clusterName, addr string, smoke bool, drainWait time.Duration) {
	fed, err := tetrium.NewFederation(opts, shards, shardBy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(1)
	}

	if smoke {
		err := runFederationSmoke(fed, opts.JournalPath != "")
		fed.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrium-serve: federation smoke:", err)
			os.Exit(1)
		}
		fmt.Println("federation smoke: ok")
		return
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fed.Close()
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: tetrium.FederationHandler(fed)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("tetrium-serve: listening on %s (cluster %s, %d shards, shard-by %s)\n",
		ln.Addr(), clusterName, shards, fed.ShardMapName())

	select {
	case err := <-errc:
		fed.Close()
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("tetrium-serve: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), drainWait)
	defer cancel()
	if err := fed.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-serve: drain:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-serve: shutdown:", err)
	}
	fed.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(1)
	}
	fmt.Println("tetrium-serve: stopped")
}

// runFederationSmoke is the sharded CI round-trip: serve the router on
// an ephemeral port, submit jobs over the wire, kill and restore one
// shard mid-flight (journaled deployments only), then prove every
// admitted job reaches done exactly once and the aggregated endpoints
// stay coherent throughout.
func runFederationSmoke(fed *tetrium.Federation, journaled bool) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: tetrium.FederationHandler(fed)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}
	fmt.Printf("federation smoke: serving on %s (%d shards)\n", base, fed.NumShards())

	if err := federationSmokeSteps(client, base, fed, journaled); err != nil {
		srv.Close()
		<-done
		return err
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-done; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

func federationSmokeSteps(client *http.Client, base string, fed *tetrium.Federation, journaled bool) error {
	if body, err := smokeGet(client, base+"/healthz"); err != nil {
		return fmt.Errorf("healthz: %w", err)
	} else if !strings.Contains(body, "ok") {
		return fmt.Errorf("healthz replied %q", body)
	}
	if _, err := smokeGet(client, base+"/readyz"); err != nil {
		return fmt.Errorf("readyz: %w", err)
	}

	cl, err := fetchCluster(client, base)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}

	// Enough jobs that both shards hold work when one dies.
	jobs := workload.Generate(workload.BigData(cl.N(), 10, 42))
	var ids []int
	for _, j := range jobs {
		id, err := submitJob(client, base, j)
		if err != nil {
			return fmt.Errorf("submit: %w", err)
		}
		ids = append(ids, id)
	}
	fmt.Printf("federation smoke: submitted %d jobs\n", len(ids))

	// The router must have spread the IDs over more than one shard.
	seen := map[int]bool{}
	for _, id := range ids {
		seen[id%fed.NumShards()] = true
	}
	if len(seen) < 2 {
		return fmt.Errorf("all %d jobs landed on one shard; shard map not spreading", len(ids))
	}

	// Kill shard 0 while jobs are in flight; its journal restores the
	// admitted jobs and they re-run under their original IDs.
	if journaled {
		if err := fed.RestartShard(0); err != nil {
			return fmt.Errorf("restart shard 0: %w", err)
		}
		fmt.Println("federation smoke: shard 0 killed and restored from journal")
	}

	// §4.2 update fans out to every shard slice.
	if err := postDrop(client, base, "0:0.3"); err != nil {
		return fmt.Errorf("cluster update: %w", err)
	}

	// Every admitted job must reach done — none lost to the shard kill.
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			body, err := smokeGet(client, fmt.Sprintf("%s/v1/jobs/%d", base, id))
			if err != nil {
				return fmt.Errorf("poll job %d: %w", id, err)
			}
			var st api.JobStatus
			if err := json.Unmarshal([]byte(body), &st); err != nil {
				return fmt.Errorf("poll job %d: %w", id, err)
			}
			if st.State == "done" {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("job %d stuck in state %q", id, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	fmt.Println("federation smoke: all jobs completed")

	// Aggregated metrics must count every completion exactly once.
	txt, err := smokeGet(client, base+"/metrics.txt")
	if err != nil {
		return fmt.Errorf("metrics.txt: %w", err)
	}
	wantDone := fmt.Sprintf("jobs.done %d", len(ids))
	if !strings.Contains(txt, wantDone) {
		return fmt.Errorf("/metrics.txt missing %q (lost or double-counted completions):\n%s", wantDone, txt)
	}
	prom, err := smokeGet(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if !strings.Contains(prom, "tetrium_federation_shards") {
		return fmt.Errorf("/metrics missing federation gauges:\n%s", prom)
	}

	// Per-shard state endpoint.
	fedBody, err := smokeGet(client, base+"/v1/federation")
	if err != nil {
		return fmt.Errorf("federation status: %w", err)
	}
	var fs federation.FederationStatus
	if err := json.Unmarshal([]byte(fedBody), &fs); err != nil {
		return fmt.Errorf("federation status: %w", err)
	}
	if fs.Shards != fed.NumShards() || len(fs.Members) != fed.NumShards() {
		return fmt.Errorf("federation status reports %d shards / %d members, want %d",
			fs.Shards, len(fs.Members), fed.NumShards())
	}

	// Merged event stream with a composite cursor round-trip.
	resp, err := client.Get(base + "/debug/events")
	if err != nil {
		return fmt.Errorf("events: %w", err)
	}
	next := resp.Header.Get("Tetrium-Events-Next")
	resp.Body.Close()
	if strings.Count(next, ":") != fed.NumShards()-1 {
		return fmt.Errorf("events cursor %q is not a %d-field vector", next, fed.NumShards())
	}
	if _, err := smokeGet(client, base+"/debug/events?since="+next); err != nil {
		return fmt.Errorf("events since %q: %w", next, err)
	}

	// Graceful drain: no further admissions.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := fed.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if _, err := submitJob(client, base, jobs[0]); err == nil {
		return fmt.Errorf("submission accepted while draining")
	}
	return nil
}
