package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"tetrium"
	"tetrium/internal/engine/api"
	"tetrium/internal/workload"
)

// runSmoke is the CI end-to-end check: start the HTTP server on an
// ephemeral port, submit five jobs over the wire, poll them to
// completion, fire a §4.2 cluster update, scrape /metrics and
// /debug/events, then drain and shut down cleanly. Any deviation is an
// error (non-zero exit).
func runSmoke(eng *tetrium.Engine) error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: tetrium.EngineHandler(eng)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 10 * time.Second}
	fmt.Printf("smoke: serving on %s\n", base)

	if err := smokeSteps(client, base, eng); err != nil {
		srv.Close()
		<-done
		return err
	}

	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-done; err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

func smokeSteps(client *http.Client, base string, eng *tetrium.Engine) error {
	// Liveness.
	if body, err := smokeGet(client, base+"/healthz"); err != nil {
		return fmt.Errorf("healthz: %w", err)
	} else if !strings.Contains(body, "ok") {
		return fmt.Errorf("healthz replied %q", body)
	}

	// Cluster shape drives the generated jobs.
	cl, err := fetchCluster(client, base)
	if err != nil {
		return fmt.Errorf("cluster: %w", err)
	}

	// Submit 5 jobs over the wire.
	jobs := workload.Generate(workload.BigData(cl.N(), 5, 42))
	var ids []int
	for _, j := range jobs {
		id, err := submitJob(client, base, j)
		if err != nil {
			return fmt.Errorf("submit: %w", err)
		}
		ids = append(ids, id)
	}
	fmt.Printf("smoke: submitted %d jobs\n", len(ids))

	// Mid-run §4.2 update while jobs are (possibly) still running.
	if err := postDrop(client, base, "0:0.3"); err != nil {
		return fmt.Errorf("cluster update: %w", err)
	}

	// Poll every job to a terminal state.
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range ids {
		for {
			body, err := smokeGet(client, fmt.Sprintf("%s/v1/jobs/%d", base, id))
			if err != nil {
				return fmt.Errorf("poll job %d: %w", id, err)
			}
			var st api.JobStatus
			if err := json.Unmarshal([]byte(body), &st); err != nil {
				return fmt.Errorf("poll job %d: %w", id, err)
			}
			if st.State == "done" {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("job %d stuck in state %q", id, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	fmt.Println("smoke: all jobs completed")

	// Metrics must reflect the completed work in both formats.
	prom, err := smokeGet(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	if !strings.Contains(prom, "tetrium_jobs_done 5") {
		return fmt.Errorf("/metrics missing tetrium_jobs_done 5:\n%s", prom)
	}
	txt, err := smokeGet(client, base+"/metrics.txt")
	if err != nil {
		return fmt.Errorf("metrics.txt: %w", err)
	}
	if !strings.Contains(txt, "jobs.done 5") {
		return fmt.Errorf("/metrics.txt missing jobs.done 5:\n%s", txt)
	}

	// The event stream must show the drop and its re-placements.
	restamps, drops, err := countReplacements(client, base)
	if err != nil {
		return fmt.Errorf("events: %w", err)
	}
	if drops != 1 {
		return fmt.Errorf("events recorded %d drops, want 1", drops)
	}
	fmt.Printf("smoke: events show %d drop, %d re-placements\n", drops, restamps)

	// Graceful drain: no further admissions, queue empties.
	dctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := eng.Drain(dctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if _, err := submitJob(client, base, jobs[0]); err == nil {
		return fmt.Errorf("submission accepted while draining")
	}
	return nil
}

func smokeGet(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return string(body), fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return string(body), nil
}
