// Command tetrium-serve runs the online scheduling service: a daemon
// that accepts analytics jobs over HTTP/JSON and schedules them with the
// paper's pipeline (LP placement §3, SRPT ordering §4.1, WAN budget
// §4.3, ε-fairness §4.4, k-site-limited re-placement on cluster updates
// §4.2).
//
// Server mode (default):
//
//	tetrium-serve -addr :8080 -cluster ec2-8 -scheduler tetrium
//
//	POST /v1/jobs            submit a job (trace-file stage schema)
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{id}       job detail
//	GET  /v1/cluster         live capacity view
//	POST /v1/cluster/update  §4.2 dynamics: {"sites":[{"site":0,"frac":0.4}]}
//	GET  /metrics            Prometheus text format
//	GET  /metrics.txt        native registry dump
//	GET  /debug/events       JSONL event stream (?since=<seq> cursor pagination)
//	GET  /v1/analytics/...   fleet analytics reports (with -analytics)
//	GET  /healthz            liveness
//	GET  /readyz             readiness (503 while replaying the journal or draining)
//
// SIGINT/SIGTERM drains gracefully: admission stops, in-flight jobs
// finish (up to -drain-timeout), then the server exits.
//
// Failure domain: -fault-spec injects deterministic site crashes, link
// degradation, stragglers, and solver stalls; -journal makes accepted
// jobs durable across a crash (kill -9 loses no admitted job);
// -speculate duplicates straggling stages; -solve-deadline bounds each
// placement solve before a greedy fallback takes over.
//
// Load-generator mode replays a synthetic trace against a running
// server and reports submit-to-placement latency and throughput:
//
//	tetrium-serve -loadgen -target http://127.0.0.1:8080 -jobs 100 -rate 600
//
// Smoke mode starts an in-process server on an ephemeral port, runs a
// five-job end-to-end check (submit → poll → update → metrics → drain),
// and exits non-zero on any failure:
//
//	tetrium-serve -smoke
//
// Sharded mode (-shards N with N > 1) runs N shared-nothing engine
// shards behind the federation router: same API surface, aggregated
// /v1/cluster and /metrics, merged /debug/events, plus GET
// /v1/federation for per-shard state. -shards 1 (the default) is the
// plain single-engine path, byte-identical to the pre-federation
// server. With -journal each shard journals to <path>.shard<i>:
//
//	tetrium-serve -addr :8080 -shards 4 -shard-by hash -journal /var/lib/tetrium/j
//
// -smoke with -shards N > 1 runs the federation round-trip instead:
// submit over the wire, kill and restore one shard mid-flight, verify
// no admitted job is lost.
//
// -supervise (with -shards > 1) turns the router self-healing: each
// shard is heartbeat-probed; a wedged, panicked, or stopped shard is
// restarted automatically from its journal with jittered exponential
// backoff (-restart-backoff sets the first delay), and a shard that
// keeps flapping is parked by a circuit breaker until an operator
// restarts it. POST /v1/jobs accepts an Idempotency-Key header making
// submit retries exactly-once across shard crashes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tetrium"
	"tetrium/internal/cluster"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		clusterName = flag.String("cluster", "ec2-8", "cluster preset: ec2-8|ec2-30|sim-50|paper|osp")
		seed        = flag.Int64("seed", 1, "preset/trace seed")
		schedName   = flag.String("scheduler", "tetrium", "tetrium|iridium|in-place|centralized|tetris")
		rho         = flag.Float64("rho", 1, "WAN budget knob (0..1)")
		eps         = flag.Float64("eps", 1, "fairness knob (0..1)")
		updateK     = flag.Int("update-k", 0, "sites updatable per placement on a cluster change (0 = all)")
		maxPending  = flag.Int("max-pending", 1024, "admission bound; beyond it submissions get 429")
		timeScale   = flag.Float64("time-scale", 1e-3, "estimated stage seconds → wall seconds (<= 0: instant)")
		eventsCap   = flag.Int("events-cap", 65536, "retained /debug/events entries")
		solvers     = flag.Int("solve-workers", 0, "off-loop placement solver pool size (0 = GOMAXPROCS)")
		cacheSize   = flag.Int("place-cache", 0, "placement memo cache entries (0 = default 4096, negative disables)")
		batchAdmit  = flag.Int("batch-admit", 0, "queued admissions drained into one scheduling instance (0 = default 8, 1 disables batching)")
		drainWait   = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain bound on shutdown")
		checkRun    = flag.Bool("check", false, "certify every LP solve")

		faultSpec  = flag.String("fault-spec", "", "fault injection spec, e.g. \"crash@10s:site=1,dur=30s;straggle:p=0.05,x=4\"")
		faultSeed  = flag.Int64("fault-seed", 1, "fault injector seed (straggler lottery)")
		journalPth = flag.String("journal", "", "durable-restart journal path (empty: no journal)")
		snapEvery  = flag.Int("snapshot-every", 0, "journal records between snapshot+truncate (0 = 1024)")
		speculate  = flag.Bool("speculate", false, "launch duplicates of straggling stages; first finish wins")
		solveDL    = flag.Duration("solve-deadline", 0, "per-stage LP solve bound before greedy fallback (0: none)")
		replAsync  = flag.Bool("replace-async", false, "run §4.2 re-placement solves off the event loop (async, generation-guarded)")

		analytics   = flag.Bool("analytics", false, "enable the fleet-analytics store and /v1/analytics endpoints")
		analyticsSP = flag.String("analytics-snap", "", "fleet store snapshot path (empty: no snapshots)")
		analyticsSE = flag.Duration("analytics-snap-every", 0, "fleet store snapshot interval (0: 30s default)")

		shards    = flag.Int("shards", 1, "engine shards behind the federation router (1 = single engine)")
		shardBy   = flag.String("shard-by", "hash", "submission partitioning with -shards > 1: hash|site")
		supervise = flag.Bool("supervise", false, "with -shards > 1: self-healing supervisor (heartbeat probes, auto-restart with backoff, flap breaker)")
		restartBO = flag.Duration("restart-backoff", 0, "supervisor first restart delay, doubling per failure (0 = 200ms)")

		loadgen = flag.Bool("loadgen", false, "run as load generator against -target")
		smoke   = flag.Bool("smoke", false, "run the in-process smoke check and exit")
	)
	addLoadgenFlags()
	flag.Parse()

	if *loadgen {
		// Ctrl-C mid-run still prints the partial latency report: the
		// generator watches the signal context and cuts over to reporting
		// whatever completed.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if err := runLoadgen(ctx, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "tetrium-serve: loadgen:", err)
			os.Exit(1)
		}
		return
	}

	sched, err := tetrium.ParseScheduler(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(2)
	}
	cl, err := cluster.Preset(*clusterName, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(2)
	}
	scale := *timeScale
	if scale <= 0 {
		scale = -1 // NewEngine: negative → instant completion
	}
	opts := tetrium.EngineOptions{
		Cluster:   cl,
		Scheduler: sched,
		Rho:       *rho, RhoSet: true,
		Eps: *eps, EpsSet: true,
		UpdateK:        *updateK,
		MaxPending:     *maxPending,
		TimeScale:      scale,
		EventCap:       *eventsCap,
		SolveWorkers:   *solvers,
		PlaceCacheSize: *cacheSize,
		BatchAdmit:     *batchAdmit,
		Check:          *checkRun,
		FaultSpec:      *faultSpec,
		FaultSeed:      *faultSeed,
		JournalPath:    *journalPth,
		SnapshotEvery:  *snapEvery,
		Speculate:      *speculate,
		SolveDeadline:  *solveDL,
		ReplaceAsync:   *replAsync,
		Supervise:      *supervise,
		RestartBackoff: *restartBO,

		Analytics:              *analytics,
		AnalyticsSnapshotPath:  *analyticsSP,
		AnalyticsSnapshotEvery: *analyticsSE,
	}

	if *shards > 1 {
		runFederation(opts, *shards, *shardBy, *clusterName, *addr, *smoke, *drainWait)
		return
	}

	eng, err := tetrium.NewEngine(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(1)
	}

	if *smoke {
		err := runSmoke(eng)
		eng.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tetrium-serve: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("smoke: ok")
		return
	}

	// Listen before serving so ":0" works (tests bind an ephemeral port
	// and parse the actual address from the banner).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		eng.Close()
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: tetrium.EngineHandler(eng)}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Printf("tetrium-serve: listening on %s (cluster %s, %d sites, scheduler %s)\n",
		ln.Addr(), *clusterName, cl.N(), sched)

	select {
	case err := <-errc:
		eng.Close()
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	fmt.Println("tetrium-serve: draining...")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := eng.Drain(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-serve: drain:", err)
	}
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "tetrium-serve: shutdown:", err)
	}
	eng.Close()
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "tetrium-serve:", err)
		os.Exit(1)
	}
	fmt.Println("tetrium-serve: stopped")
}
