package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tetrium"
	"tetrium/internal/engine/api"
	"tetrium/internal/metrics"
)

// Load-generator flags, registered alongside the server's.
var (
	lgTarget  *string
	lgJobs    *int
	lgTrace   *string
	lgRate    *float64
	lgWorkers *int
	lgDrop    *string
	lgWait    *time.Duration
	lgClients *int
	lgStages  *string
)

func addLoadgenFlags() {
	lgTarget = flag.String("target", "http://127.0.0.1:8080", "loadgen: server base URL")
	lgJobs = flag.Int("jobs", 100, "loadgen: jobs to submit (per stage in staged mode)")
	lgTrace = flag.String("trace", "bigdata", "loadgen: workload kind tpcds|bigdata|prod")
	lgRate = flag.Float64("rate", 600, "loadgen: submission rate, jobs/minute")
	lgWorkers = flag.Int("workers", 8, "loadgen: concurrent submitters")
	lgDrop = flag.String("drop", "0:0.4", "loadgen: site:frac cluster update fired mid-run (empty: none)")
	lgWait = flag.Duration("wait", 60*time.Second, "loadgen: per-job placement poll bound")
	lgClients = flag.Int("clients", 0, "loadgen: staged mode with N concurrent tenant clients (single stage)")
	lgStages = flag.String("stages", "", "loadgen: staged mode, client counts per stage, e.g. \"1,3,10\"")
}

// runLoadgen replays a synthetic arrival process against a running
// server and reports the serving-path numbers the ISSUE asks for:
// submission throughput, p50/p95/p99 submit-to-placement latency, and
// whether the mid-run §4.2 update produced visible re-placements.
//
// Cancelling ctx (Ctrl-C) stops submitting and polling early and still
// prints the report over whatever jobs completed by then.
func runLoadgen(ctx context.Context, seed int64) error {
	if *lgStages != "" || *lgClients > 0 {
		return runStagedLoadgen(ctx, seed)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	base := strings.TrimRight(*lgTarget, "/")

	// The cluster shape comes from the server, so generated jobs
	// reference only sites that exist there.
	cl, err := fetchCluster(client, base)
	if err != nil {
		return fmt.Errorf("fetch cluster: %w", err)
	}

	var kind tetrium.TraceKind
	switch *lgTrace {
	case "tpcds":
		kind = tetrium.TraceTPCDS
	case "bigdata":
		kind = tetrium.TraceBigData
	case "prod":
		kind = tetrium.TraceProduction
	default:
		return fmt.Errorf("unknown trace %q", *lgTrace)
	}
	jobs := tetrium.GenerateTrace(kind, cl, *lgJobs, seed)

	fmt.Printf("loadgen: %d sites, %d jobs (%s), target %.0f jobs/min, %d workers\n",
		cl.N(), len(jobs), *lgTrace, *lgRate, *lgWorkers)

	interval := time.Duration(0)
	if *lgRate > 0 {
		interval = time.Duration(60 / *lgRate * float64(time.Second))
	}

	type submitted struct {
		id      int
		sendErr error
	}
	work := make(chan *tetrium.Job)
	results := make(chan submitted, len(jobs))
	var wg sync.WaitGroup
	for w := 0; w < *lgWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range work {
				id, err := submitJob(client, base, j)
				results <- submitted{id: id, sendErr: err}
			}
		}()
	}

	start := time.Now()
	dropAfter := len(jobs) / 2
	interrupted := false
submitLoop:
	for i, j := range jobs {
		if *lgDrop != "" && i == dropAfter {
			if err := postDrop(client, base, *lgDrop); err != nil {
				return fmt.Errorf("mid-run cluster update: %w", err)
			}
			fmt.Printf("loadgen: cluster update %q fired after %d submissions\n", *lgDrop, i)
		}
		// Pace submissions to the requested rate.
		if target := time.Duration(i) * interval; interval > 0 {
			if ahead := target - time.Since(start); ahead > 0 {
				select {
				case <-time.After(ahead):
				case <-ctx.Done():
					interrupted = true
					break submitLoop
				}
			}
		}
		select {
		case work <- j:
		case <-ctx.Done():
			interrupted = true
			break submitLoop
		}
	}
	close(work)
	wg.Wait()
	submitWall := time.Since(start)
	close(results)

	var ids []int
	for r := range results {
		if r.sendErr != nil {
			return fmt.Errorf("submit: %w", r.sendErr)
		}
		ids = append(ids, r.id)
	}

	// Collect server-side submit→placement latency per job. After an
	// interrupt, jobs the server already placed are still worth
	// reporting: switch to a short grace context and harvest them (a
	// placed job answers in one GET; the first unplaced one burns the
	// grace and ends the loop).
	var latencies []float64
	pollCtx := ctx
	for _, id := range ids {
		if pollCtx == ctx && ctx.Err() != nil {
			interrupted = true
			var cancel context.CancelFunc
			pollCtx, cancel = context.WithTimeout(context.Background(), 3*time.Second)
			defer cancel()
		}
		ms, err := waitPlaced(pollCtx, client, base, id, *lgWait)
		if err != nil {
			if ctx.Err() != nil || pollCtx.Err() != nil {
				interrupted = true
				break
			}
			return fmt.Errorf("job %d: %w", id, err)
		}
		latencies = append(latencies, ms)
	}
	if interrupted {
		fmt.Printf("loadgen: interrupted — reporting %d of %d jobs\n", len(latencies), len(jobs))
	}
	if len(latencies) == 0 {
		return fmt.Errorf("interrupted before any job was placed")
	}

	restamps, drops, err := countReplacements(client, base)
	if err != nil {
		return fmt.Errorf("fetch events: %w", err)
	}

	q := metrics.Percentiles(latencies, 50, 95, 99)
	perMin := float64(len(ids)) / submitWall.Seconds() * 60
	fmt.Printf("loadgen: submitted %d jobs in %.1fs (%.0f jobs/min)\n",
		len(ids), submitWall.Seconds(), perMin)
	fmt.Printf("loadgen: submit→placement latency p50=%.2fms p95=%.2fms p99=%.2fms\n",
		q[0], q[1], q[2])
	fmt.Printf("loadgen: cluster updates observed: %d drop events, %d re-placements (restamp)\n",
		drops, restamps)
	if err := reportSolverStats(client, base); err != nil {
		return fmt.Errorf("fetch metrics: %w", err)
	}
	// An interrupted run may have stopped before the mid-run update
	// fired, so only a full run treats zero re-placements as a failure.
	if !interrupted && *lgDrop != "" && restamps == 0 {
		return fmt.Errorf("mid-run update produced no re-placements in /debug/events")
	}
	return nil
}

// reportSolverStats scrapes /metrics.txt for the server-side solver
// picture: placement memo-cache hit rate and LP solver wall time.
func reportSolverStats(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics.txt")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics.txt: %s", resp.Status)
	}
	var (
		hits, misses, solves float64
		solveCount           int
		solveMeanNs          float64
		stallMaxNs           float64
		stallCount           int
		stallMeanNs          float64

		// Self-healing picture (PR 10): zero-valued and absent metrics
		// both read as 0; the health line only prints for supervised
		// (federated) servers, the healing line whenever anything healed.
		health      = map[string]float64{}
		supervised  bool
		breakerOpen float64
		autoHeals   float64
		panicsSeen  float64
		quarantined float64
		deduped     float64
	)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 {
			continue
		}
		switch fields[0] {
		case "counter":
			v, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				continue
			}
			switch fields[1] {
			case "engine.place_cache_hits":
				hits = v
			case "engine.place_cache_misses":
				misses = v
			case "lp.solves":
				solves = v
			case "federation.auto_restarts":
				autoHeals = v
			case "engine.panics_recovered":
				panicsSeen += v
			case "federation.panics_healed":
				panicsSeen += v
			case "journal.records_quarantined":
				quarantined = v
			case "federation.submit_deduped":
				deduped = v
			}
		case "gauge":
			if state, ok := strings.CutPrefix(fields[1], "federation.shard_health."); ok {
				supervised = true
				if v, err := strconv.ParseFloat(fields[2], 64); err == nil {
					health[state] = v
				}
				continue
			}
			if fields[1] == "federation.breaker_open" {
				if v, err := strconv.ParseFloat(fields[2], 64); err == nil {
					breakerOpen = v
				}
				continue
			}
			if fields[1] != "engine.loop_stall_max_ns" {
				continue
			}
			// Single-engine this is the max observed stall; the federation
			// scrape sums shard gauges, making it an upper bound.
			if v, err := strconv.ParseFloat(fields[2], 64); err == nil && v > stallMaxNs {
				stallMaxNs = v
			}
		case "histogram":
			switch fields[1] {
			case "lp.solve_ns":
				for _, f := range fields[2:] {
					if v, ok := strings.CutPrefix(f, "count="); ok {
						solveCount, _ = strconv.Atoi(v)
					}
					if v, ok := strings.CutPrefix(f, "mean="); ok {
						solveMeanNs, _ = strconv.ParseFloat(v, 64)
					}
				}
			case "engine.loop_stall_ns":
				for _, f := range fields[2:] {
					if v, ok := strings.CutPrefix(f, "count="); ok {
						stallCount, _ = strconv.Atoi(v)
					}
					if v, ok := strings.CutPrefix(f, "mean="); ok {
						stallMeanNs, _ = strconv.ParseFloat(v, 64)
					}
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	rate := 0.0
	if hits+misses > 0 {
		rate = hits / (hits + misses) * 100
	}
	totalMs := solveMeanNs * float64(solveCount) / 1e6
	fmt.Printf("loadgen: placement cache: %.0f hits / %.0f misses (%.1f%% hit rate)\n",
		hits, misses, rate)
	fmt.Printf("loadgen: LP solver: %.0f solves, %.1fms total wall time (mean %.2fms)\n",
		solves, totalMs, solveMeanNs/1e6)
	fmt.Printf("loadgen: event-loop stall: max %.2fms, %d stalls ≥ floor (mean %.2fms)\n",
		stallMaxNs/1e6, stallCount, stallMeanNs/1e6)
	if supervised {
		fmt.Printf("loadgen: shard health: %.0f healthy / %.0f suspect / %.0f down / %.0f restarting / %.0f parked (breaker open: %.0f)\n",
			health["healthy"], health["suspect"], health["down"], health["restarting"], health["parked"], breakerOpen)
	}
	if supervised || autoHeals+panicsSeen+quarantined+deduped > 0 {
		fmt.Printf("loadgen: self-healing: %.0f auto-restarts, %.0f panics recovered, %.0f journal records quarantined, %.0f submits deduped\n",
			autoHeals, panicsSeen, quarantined, deduped)
	}
	return nil
}

func fetchCluster(client *http.Client, base string) (*tetrium.Cluster, error) {
	resp, err := client.Get(base + "/v1/cluster")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/cluster: %s", resp.Status)
	}
	var cs api.ClusterStatus
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		return nil, err
	}
	sites := make([]tetrium.Site, len(cs.Sites))
	for i, s := range cs.Sites {
		sites[i] = tetrium.Site{Name: s.Name, Slots: s.Slots, UpBW: s.UpBW, DownBW: s.DownBW}
	}
	return tetrium.NewCluster(sites), nil
}

// submitJob posts one job, retrying on 429 backpressure until accepted.
func submitJob(client *http.Client, base string, j *tetrium.Job) (int, error) {
	body, err := json.Marshal(api.FromWorkload(j))
	if err != nil {
		return 0, err
	}
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			if attempt > 600 {
				return 0, fmt.Errorf("still backpressured after %d attempts", attempt)
			}
			wait := time.Duration(1+attempt%5) * 100 * time.Millisecond
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if s, err := strconv.Atoi(ra); err == nil {
					wait = time.Duration(s) * time.Second
				}
			}
			time.Sleep(wait)
			continue
		}
		var st api.JobStatus
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			return 0, fmt.Errorf("POST /v1/jobs: %s", resp.Status)
		}
		if derr != nil {
			return 0, derr
		}
		return st.ID, nil
	}
}

// waitPlaced polls one job until the engine has made its first placement
// decision and returns the server-measured submit→placement latency.
func waitPlaced(ctx context.Context, client *http.Client, base string, id int, bound time.Duration) (float64, error) {
	deadline := time.Now().Add(bound)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, fmt.Sprintf("%s/v1/jobs/%d", base, id), nil)
		if err != nil {
			return 0, err
		}
		resp, err := client.Do(req)
		if err != nil {
			return 0, err
		}
		var st api.JobStatus
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if derr != nil {
			return 0, derr
		}
		if st.PlacedUnixMs != 0 {
			return st.SubmitToPlaceMs, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("not placed within %s (state %s)", bound, st.State)
		}
		select {
		case <-time.After(20 * time.Millisecond):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

func postDrop(client *http.Client, base, spec string) error {
	parts := strings.Split(spec, ":")
	if len(parts) != 2 {
		return fmt.Errorf("want site:frac, got %q", spec)
	}
	site, err := strconv.Atoi(parts[0])
	if err != nil {
		return err
	}
	frac, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return err
	}
	body, _ := json.Marshal(api.UpdateRequest{Sites: []api.SiteUpdate{{Site: site, Frac: frac}}})
	resp, err := client.Post(base+"/v1/cluster/update", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST /v1/cluster/update: %s", resp.Status)
	}
	var ur api.UpdateResponse
	if err := json.NewDecoder(resp.Body).Decode(&ur); err != nil {
		return err
	}
	fmt.Printf("cluster update: server re-placed %d stages\n", ur.StagesReplaced)
	return nil
}

// countReplacements scans /debug/events for §4.2 activity: DropEvents
// and Restamp placements.
func countReplacements(client *http.Client, base string) (restamps, drops int, err error) {
	resp, err := client.Get(base + "/debug/events")
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("GET /debug/events: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec struct {
			K string `json:"k"`
			E struct {
				Restamp bool `json:"restamp"`
			} `json:"e"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue
		}
		switch rec.K {
		case "placement":
			if rec.E.Restamp {
				restamps++
			}
		case "drop":
			drops++
		}
	}
	return restamps, drops, sc.Err()
}
