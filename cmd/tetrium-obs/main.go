// Command tetrium-obs replays a simulation with the observability
// layer enabled and writes its artifacts: the JSONL event stream, a
// Chrome/Perfetto trace_event JSON for Gantt-style visual debugging, a
// text metrics dump, and the estimate-vs-actual report joining each
// stage's LP-estimated completion time against its realized time.
//
// Usage:
//
//	tetrium-obs [flags]
//
//	-cluster    ec2-8 | ec2-30 | sim-50 | paper     (default ec2-8)
//	-trace      tpcds | bigdata | prod               (default tpcds)
//	-trace-file JSON trace (overrides -trace; may embed a cluster)
//	-scheduler  tetrium | iridium | in-place | centralized | tetris
//	-jobs       number of jobs to generate           (default 20)
//	-seed       generation seed                      (default 1)
//	-rho, -eps  the §4.3 / §4.4 knobs               (default 1)
//	-drop       site:frac:time capacity drop, repeatable
//	-update-k   sites updatable after a drop (0 = all)
//	-out        output directory                     (default ".")
//
// Artifacts written to -out:
//
//	events.jsonl    one JSON object per event, deterministic per seed
//	perfetto.json   load at https://ui.perfetto.dev
//	metrics.txt     the metrics-registry dump
//	estimates.txt   per-stage and per-job LP estimation error
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"tetrium"
	"tetrium/internal/cluster"
	"tetrium/internal/trace"
)

type dropFlags []tetrium.Drop

func (d *dropFlags) String() string { return fmt.Sprint(*d) }

func (d *dropFlags) Set(v string) error {
	parts := strings.Split(v, ":")
	if len(parts) != 3 {
		return fmt.Errorf("want site:frac:time, got %q", v)
	}
	site, err := strconv.Atoi(parts[0])
	if err != nil {
		return err
	}
	frac, err := strconv.ParseFloat(parts[1], 64)
	if err != nil {
		return err
	}
	at, err := strconv.ParseFloat(parts[2], 64)
	if err != nil {
		return err
	}
	*d = append(*d, tetrium.Drop{Site: site, Frac: frac, Time: at})
	return nil
}

func main() {
	var (
		clusterName = flag.String("cluster", "ec2-8", "cluster preset: ec2-8|ec2-30|sim-50|paper")
		traceName   = flag.String("trace", "tpcds", "workload: tpcds|bigdata|prod")
		traceFile   = flag.String("trace-file", "", "JSON trace file (overrides -trace)")
		schedName   = flag.String("scheduler", "tetrium", "tetrium|iridium|in-place|centralized|tetris")
		jobs        = flag.Int("jobs", 20, "number of jobs")
		seed        = flag.Int64("seed", 1, "generation seed")
		rho         = flag.Float64("rho", 1, "WAN budget knob (0..1)")
		eps         = flag.Float64("eps", 1, "fairness knob (0..1)")
		updateK     = flag.Int("update-k", 0, "sites updatable after a drop (0 = all)")
		outDir      = flag.String("out", ".", "output directory for artifacts")
	)
	var drops dropFlags
	flag.Var(&drops, "drop", "site:frac:time capacity drop (repeatable)")
	flag.Parse()

	cl, jobList, err := loadWorkload(*clusterName, *traceName, *traceFile, *jobs, *seed)
	if err != nil {
		fatal(err)
	}
	sched, err := parseScheduler(*schedName)
	if err != nil {
		fatal(err)
	}

	rec := tetrium.NewRecorder()
	res, err := tetrium.Simulate(tetrium.Options{
		Cluster:   cl,
		Jobs:      jobList,
		Scheduler: sched,
		Rho:       *rho, RhoSet: true,
		Eps: *eps, EpsSet: true,
		Seed:     *seed,
		Drops:    drops,
		UpdateK:  *updateK,
		Observer: rec,
	})
	if err != nil {
		fatal(err)
	}

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}
	writeArtifact(*outDir, "events.jsonl", func(f *os.File) error {
		return tetrium.WriteEventsJSONL(f, rec.Events())
	})
	writeArtifact(*outDir, "perfetto.json", func(f *os.File) error {
		return tetrium.WritePerfettoTrace(f, rec.Events())
	})
	writeArtifact(*outDir, "metrics.txt", func(f *os.File) error {
		_, err := rec.Registry().WriteText(f)
		return err
	})
	rep := rec.EstimateReport()
	writeArtifact(*outDir, "estimates.txt", func(f *os.File) error {
		_, err := rep.WriteText(f)
		return err
	})

	fmt.Printf("scheduler        %s\n", sched)
	fmt.Printf("jobs             %d\n", len(res.Jobs))
	fmt.Printf("mean response    %.1f s\n", res.MeanResponse())
	fmt.Printf("makespan         %.1f s\n", res.Makespan)
	fmt.Printf("events           %d\n", len(rec.Events()))
	fmt.Printf("LP |err|         mean=%.3f p50=%.3f p95=%.3f (per job)\n",
		rep.MeanAbsErr, rep.P50, rep.P95)
	fmt.Printf("artifacts        %s/{events.jsonl,perfetto.json,metrics.txt,estimates.txt}\n", *outDir)
}

func writeArtifact(dir, name string, write func(*os.File) error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tetrium-obs:", err)
	os.Exit(1)
}

func loadWorkload(clusterName, traceName, traceFile string, jobs int, seed int64) (*tetrium.Cluster, []*tetrium.Job, error) {
	cl, err := cluster.Preset(clusterName, seed)
	if err != nil {
		return nil, nil, err
	}
	if traceFile != "" {
		fileCl, jobList, err := trace.ReadFile(traceFile)
		if err != nil {
			return nil, nil, err
		}
		if fileCl != nil {
			cl = fileCl
		}
		return cl, jobList, nil
	}
	var kind tetrium.TraceKind
	switch traceName {
	case "tpcds":
		kind = tetrium.TraceTPCDS
	case "bigdata":
		kind = tetrium.TraceBigData
	case "prod":
		kind = tetrium.TraceProduction
	default:
		return nil, nil, fmt.Errorf("unknown trace %q", traceName)
	}
	return cl, tetrium.GenerateTrace(kind, cl, jobs, seed), nil
}

func parseScheduler(name string) (tetrium.Scheduler, error) {
	switch name {
	case "tetrium":
		return tetrium.SchedulerTetrium, nil
	case "iridium":
		return tetrium.SchedulerIridium, nil
	case "in-place":
		return tetrium.SchedulerInPlace, nil
	case "centralized":
		return tetrium.SchedulerCentralized, nil
	case "tetris":
		return tetrium.SchedulerTetris, nil
	default:
		return 0, fmt.Errorf("unknown scheduler %q", name)
	}
}
