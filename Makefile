# Developer entry points. `make ci` is the full gate: vet, build,
# race-enabled tests, and the nil-observer allocation guard (which must
# run without -race — the race detector changes allocation counts, so
# that test skips itself under `make race`).

GO ?= go

.PHONY: ci build vet test race bench-guard bench fmt

ci: vet build race bench-guard

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Guard the zero-overhead contract: a nil-observer run must stay within
# 2% of the pre-observability allocation baseline (see
# obs_overhead_test.go).
bench-guard:
	$(GO) test -run TestNilObserverAllocBudget -count=1 -v .

bench:
	$(GO) test -bench=. -benchmem .

fmt:
	gofmt -l -w .
