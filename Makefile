# Developer entry points. `make ci` is the full gate: vet, build,
# race-enabled tests, and the nil-observer allocation guard (which must
# run without -race — the race detector changes allocation counts, so
# that test skips itself under `make race`).

GO ?= go

.PHONY: ci build vet test race bench-guard bench bench-place bench-smoke fmt fuzz-smoke serve-smoke chaos-smoke analytics-smoke federation-smoke selfheal-smoke bench-federation bench-replace bench-replace-smoke

ci: vet build race bench-guard bench-smoke fuzz-smoke serve-smoke chaos-smoke analytics-smoke federation-smoke selfheal-smoke bench-replace-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Guard the zero-overhead contract: a nil-observer run must stay within
# 2% of the pre-observability allocation baseline (see
# obs_overhead_test.go).
bench-guard:
	$(GO) test -run TestNilObserverAllocBudget -count=1 -v .

bench:
	$(GO) test -bench=. -benchmem .

# Which benchmarks the fast-placement-path report (BENCH_PR4.json)
# tracks, and the fixed iteration count that bench/pr4_before.txt was
# recorded with (-benchtime=20x keeps before/after comparable).
PLACE_BENCH = BenchmarkSolve$$|BenchmarkPlaceMap|BenchmarkPlaceReduce|BenchmarkEngineSubmit
PLACE_PKGS  = ./internal/lp ./internal/place ./internal/engine

# Which benchmarks the warm-start/batching report (BENCH_PR7.json)
# tracks. The regex deliberately also matches the cold controls
# (BenchmarkResolveCold, BenchmarkEngineBurstSubmitNoBatch) so the
# report shows the ~1.0 baselines next to the warm/batched wins.
PLACE_BENCH7 = BenchmarkResolve|BenchmarkEngineReplace|BenchmarkEngineBurstSubmit
PLACE_PKGS7  = ./internal/lp ./internal/engine

# Regenerate the placement fast-path benchmark report: run the tracked
# benchmarks 5×, then diff the medians against the checked-in baseline
# bench/pr4_before.txt into BENCH_PR4.json (speedup + allocation
# ratios).
bench-place:
	$(GO) test -run '^$$' -bench '$(PLACE_BENCH)' -benchmem -benchtime=20x -count=5 $(PLACE_PKGS) | tee bench/pr4_after.txt
	$(GO) run ./cmd/benchjson -before bench/pr4_before.txt -after bench/pr4_after.txt -out BENCH_PR4.json
	@grep geomean BENCH_PR4.json
	$(GO) test -run '^$$' -bench '$(PLACE_BENCH7)' -benchmem -benchtime=20x -count=5 $(PLACE_PKGS7) | tee bench/pr7_after.txt
	$(GO) run ./cmd/benchjson -before bench/pr7_before.txt -after bench/pr7_after.txt -out BENCH_PR7.json
	@grep geomean BENCH_PR7.json

# One-iteration pass over every benchmark in the placement path: proves
# the bench harnesses still compile and run without paying for a full
# measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench '$(PLACE_BENCH)|$(PLACE_BENCH7)' -benchtime=1x $(PLACE_PKGS)

# Short fuzzing passes over the LP solver (every solution certified
# against the brute-force reference / duality bound) and the placement
# layer (every placement checked against the paper's conservation
# equations). Go allows one -fuzz pattern per invocation, hence two runs.
fuzz-smoke:
	$(GO) test ./internal/check -fuzz=FuzzSolve -fuzztime=10s
	$(GO) test ./internal/place -fuzz=FuzzPlaceMap -fuzztime=10s

# End-to-end check of the serving path: tetrium-serve starts its HTTP
# server on an ephemeral port, submits 5 jobs over the wire, fires a
# §4.2 cluster update, polls everything to completion, scrapes /metrics
# and /debug/events, drains, and exits non-zero on any deviation.
# (`make race` covers the engine's concurrency tests: go test -race ./...
# includes ./internal/engine/...)
serve-smoke:
	$(GO) run ./cmd/tetrium-serve -smoke -cluster paper -time-scale 0.002

# Failure-domain gate: the engine chaos test (site crashes, partition,
# stragglers, solver stalls under concurrent submitters — zero lost
# jobs) plus the crash-restart and SIGTERM-drain subprocess tests, all
# under the race detector.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaosEngine' ./internal/engine
	$(GO) test -race -count=1 -run 'TestCrashRestart|TestSigtermDrain' ./cmd/tetrium-serve

# Fleet-analytics gate: a live multi-tenant run must serve all four
# /v1/analytics endpoint families as well-formed per-tenant JSON, the
# staged 1→N-client loadgen must print its latency + attribution
# tables, and offline tetrium-fleet ingestion of the run's journal +
# event trace must reproduce the live totals bit-for-bit. The engine
# alloc-guard (zero allocations on the event path with analytics off)
# rides along.
analytics-smoke:
	$(GO) test -count=1 -run 'TestAnalyticsSmoke|TestFleetCLIUsage' ./cmd/tetrium-fleet
	$(GO) test -count=1 -run 'TestStagedLoadgen' ./cmd/tetrium-serve
	$(GO) test -count=1 -run 'TestAnalyticsDisabledHotPath|TestAnalyticsLiveOfflineParity' ./internal/engine

# Federation gate: the 2-shard router round-trip (submit across shards,
# kill + journal-restore shard 0, §4.2 drop, poll to done, merged
# metrics/events/status, drain), then the router hammer and
# shard-loss-mid-flight chaos tests plus the serve-level crash-restart
# and -shards 1 bit-compat subprocess tests, all under the race
# detector.
federation-smoke:
	$(GO) run ./cmd/tetrium-serve -smoke -shards 2 -journal $$(mktemp -d)/journal -time-scale 0.002
	$(GO) test -race -count=1 -run 'TestRouterHammer|TestShardLossMidFlight' ./internal/federation
	$(GO) test -race -count=1 -run 'TestFederationCrashRestart|TestShardsOneMatchesSingleEngine' ./cmd/tetrium-serve

# Self-healing gate (PR 10), all under the race detector: the chaos
# tentpole (a supervised 2-shard journaled fleet survives an injected
# event-loop panic, a SIGKILL-style shard loss, and a corrupted journal
# record — all healed automatically, zero lost jobs, readiness degraded
# not failed), the flap-breaker and fault-timeline tests, exactly-once
# idempotent submit across a crash, and the subprocess restart over a
# damaged journal. The serve-level federation smoke then re-runs with
# -supervise so the heals happen under live supervision end to end.
selfheal-smoke:
	$(GO) test -race -count=1 -run 'TestSelfHealChaos|TestBreakerParksFlappingShard|TestChaosTimelineFires|TestFederationIdemExactlyOnce|TestUnhealthyRetryAfterDeadline' ./internal/federation
	$(GO) test -race -count=1 -run 'TestCrashRestartCorruptJournal' ./cmd/tetrium-serve
	$(GO) run ./cmd/tetrium-serve -smoke -shards 2 -supervise -journal $$(mktemp -d)/journal -time-scale 0.002

# Regenerate the federation scaling report: aggregate submit throughput
# at 1 vs 2 vs 4 shards over a 4000-job resident fleet (best-of-3 per
# configuration), written to BENCH_PR8.json.
bench-federation:
	TETRIUM_FED_BENCH_OUT=$(CURDIR)/BENCH_PR8.json $(GO) test -count=1 -run TestSubmitThroughputScaling -v -timeout 600s ./internal/federation
	@grep speedup BENCH_PR8.json

# Regenerate the incremental re-placement report (BENCH_PR9.json):
# cluster-update latency over a 2048-job resident fleet at 1/2/4 shards,
# full replaceAll (TETRIUM_REPLACE_MODE=full, the pre-PR 9 baseline)
# vs dirty-set async (incr). benchjson gates the geomean at ≥ 1.0 so a
# regressed report can never be committed silently; the PR 9 acceptance
# bar is ≥ 5×.
bench-replace:
	TETRIUM_REPLACE_MODE=full $(GO) test -run '^$$' -bench BenchmarkClusterUpdate -benchtime=5x -count=5 -timeout 1200s ./internal/federation | tee bench/pr9_full.txt
	TETRIUM_REPLACE_MODE=incr $(GO) test -run '^$$' -bench BenchmarkClusterUpdate -benchtime=5x -count=5 -timeout 1200s ./internal/federation | tee bench/pr9_incr.txt
	$(GO) run ./cmd/benchjson -before bench/pr9_full.txt -after bench/pr9_incr.txt -min-speedup 1.0 -out BENCH_PR9.json
	@grep geomean BENCH_PR9.json

# CI-sized version of bench-replace: a small resident fleet, two
# iterations, throwaway output files — proves the harness runs and that
# incremental §4.2 is not slower than the full scan it replaced.
bench-replace-smoke:
	@dir=$$(mktemp -d); \
	TETRIUM_REPLACE_MODE=full TETRIUM_REPLACE_RESIDENT=160 $(GO) test -run '^$$' -bench BenchmarkClusterUpdate -benchtime=2x ./internal/federation > $$dir/full.txt && \
	TETRIUM_REPLACE_MODE=incr TETRIUM_REPLACE_RESIDENT=160 $(GO) test -run '^$$' -bench BenchmarkClusterUpdate -benchtime=2x ./internal/federation > $$dir/incr.txt && \
	$(GO) run ./cmd/benchjson -before $$dir/full.txt -after $$dir/incr.txt -min-speedup 1.0 -out $$dir/smoke.json && \
	grep geomean $$dir/smoke.json; \
	rc=$$?; rm -rf $$dir; exit $$rc

fmt:
	gofmt -l -w .
