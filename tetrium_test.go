package tetrium

import (
	"math"
	"testing"
)

func smallCluster() *Cluster {
	return NewCluster([]Site{
		{Name: "big", Slots: 16, UpBW: 1 * Gbps, DownBW: 1 * Gbps},
		{Name: "mid", Slots: 8, UpBW: 500 * Mbps, DownBW: 500 * Mbps},
		{Name: "edge", Slots: 4, UpBW: 100 * Mbps, DownBW: 100 * Mbps},
	})
}

func TestSimulateAllSchedulers(t *testing.T) {
	c := smallCluster()
	jobs := GenerateTrace(TraceBigData, c, 5, 1)
	for _, s := range []Scheduler{
		SchedulerTetrium, SchedulerIridium, SchedulerInPlace,
		SchedulerCentralized, SchedulerTetris,
	} {
		res, err := Simulate(Options{Cluster: c, Jobs: jobs, Scheduler: s})
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if len(res.Jobs) != 5 {
			t.Fatalf("%v: %d job results", s, len(res.Jobs))
		}
		for _, j := range res.Jobs {
			if j.Response <= 0 {
				t.Fatalf("%v: job %d response %v", s, j.ID, j.Response)
			}
		}
	}
}

func TestTetriumBeatsInPlaceOnPaperExample(t *testing.T) {
	c := PaperExampleCluster()
	jobs := GenerateTrace(TraceTPCDS, c, 6, 2)
	tet, err := Simulate(Options{Cluster: c, Jobs: jobs, Scheduler: SchedulerTetrium})
	if err != nil {
		t.Fatal(err)
	}
	inp, err := Simulate(Options{Cluster: c, Jobs: jobs, Scheduler: SchedulerInPlace})
	if err != nil {
		t.Fatal(err)
	}
	if tet.MeanResponse() >= inp.MeanResponse() {
		t.Errorf("tetrium %v not faster than in-place %v", tet.MeanResponse(), inp.MeanResponse())
	}
}

func TestRhoKnob(t *testing.T) {
	c := smallCluster()
	jobs := GenerateTrace(TraceBigData, c, 5, 3)
	minWAN, err := Simulate(Options{Cluster: c, Jobs: jobs, Scheduler: SchedulerTetrium, Rho: 0, RhoSet: true})
	if err != nil {
		t.Fatal(err)
	}
	maxWAN, err := Simulate(Options{Cluster: c, Jobs: jobs, Scheduler: SchedulerTetrium})
	if err != nil {
		t.Fatal(err)
	}
	if minWAN.WANBytes > maxWAN.WANBytes {
		t.Errorf("rho=0 WAN %v exceeds rho=1 WAN %v", minWAN.WANBytes, maxWAN.WANBytes)
	}
}

func TestSimulateIsolated(t *testing.T) {
	c := smallCluster()
	jobs := GenerateTrace(TraceBigData, c, 3, 4)
	iso, err := SimulateIsolated(Options{Cluster: c, Scheduler: SchedulerTetrium}, jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if iso <= 0 || math.IsNaN(iso) {
		t.Errorf("isolated response = %v", iso)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(Options{}); err == nil {
		t.Error("nil cluster accepted")
	}
	c := smallCluster()
	if _, err := Simulate(Options{Cluster: c, Scheduler: Scheduler(99)}); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestPlaceJob(t *testing.T) {
	c := PaperExampleCluster()
	jobs := GenerateTrace(TraceBigData, c, 1, 5)
	est, tasks, err := PlaceJob(c, jobs[0])
	if err != nil {
		t.Fatal(err)
	}
	if est <= 0 {
		t.Errorf("estimate = %v", est)
	}
	sum := 0
	for _, n := range tasks {
		sum += n
	}
	if sum != jobs[0].Stages[0].NumTasks() {
		t.Errorf("placed %d tasks, stage has %d", sum, jobs[0].Stages[0].NumTasks())
	}
	if _, _, err := PlaceJob(c, nil); err == nil {
		t.Error("nil job accepted")
	}
}

func TestSchedulerString(t *testing.T) {
	want := map[Scheduler]string{
		SchedulerTetrium:     "tetrium",
		SchedulerIridium:     "iridium",
		SchedulerInPlace:     "in-place",
		SchedulerCentralized: "centralized",
		SchedulerTetris:      "tetris",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
}

func TestDropInjection(t *testing.T) {
	c := smallCluster()
	jobs := GenerateTrace(TraceBigData, c, 4, 6)
	res, err := Simulate(Options{
		Cluster: c, Jobs: jobs, Scheduler: SchedulerTetrium,
		Drops:   []Drop{{Time: 2, Site: 0, Frac: 0.5}},
		UpdateK: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range res.Jobs {
		if j.Completion < 0 {
			t.Fatal("incomplete job after drop")
		}
	}
}

func TestAddReplicasPublic(t *testing.T) {
	c := smallCluster()
	base := GenerateTrace(TraceBigData, c, 3, 8)
	rep := AddReplicas(base, c, 2, 1)
	if len(rep) != len(base) {
		t.Fatal("job count changed")
	}
	for ji := range base {
		if base[ji].TotalTasks() != rep[ji].TotalTasks() {
			t.Fatal("task structure changed")
		}
		for si, st := range base[ji].Stages {
			for ti, task := range st.Tasks {
				r := rep[ji].Stages[si].Tasks[ti]
				if task.Src != r.Src || task.Compute != r.Compute {
					t.Fatal("non-replica fields changed")
				}
				if st.Kind.String() == "map" && len(r.Replicas) != 2 {
					t.Fatalf("map task has %d replicas, want 2", len(r.Replicas))
				}
			}
		}
		// Base jobs must be untouched (deep copy).
		for _, st := range base[ji].Stages {
			for _, task := range st.Tasks {
				if len(task.Replicas) != 0 {
					t.Fatal("AddReplicas mutated the input trace")
				}
			}
		}
	}
}

// TestSimulateChecked runs every scheduler over a seeded workload with
// Options.Check enabled: each LP solve is certified (primal residuals,
// non-negativity, optimality) and the engine's conservation invariants
// are verified at every event. A violation fails the Simulate call.
// Results must be bit-identical to an unchecked run.
func TestSimulateChecked(t *testing.T) {
	c := smallCluster()
	jobs := GenerateTrace(TraceTPCDS, c, 6, 7)
	for _, s := range []Scheduler{
		SchedulerTetrium, SchedulerIridium, SchedulerInPlace,
		SchedulerCentralized, SchedulerTetris,
	} {
		checked, err := Simulate(Options{Cluster: c, Jobs: jobs, Scheduler: s, Check: true})
		if err != nil {
			t.Fatalf("%v: checked run: %v", s, err)
		}
		plain, err := Simulate(Options{Cluster: c, Jobs: jobs, Scheduler: s})
		if err != nil {
			t.Fatalf("%v: unchecked run: %v", s, err)
		}
		if checked.Makespan != plain.Makespan || checked.WANBytes != plain.WANBytes {
			t.Fatalf("%v: Check changed results: makespan %g vs %g, WAN %g vs %g",
				s, checked.Makespan, plain.Makespan, checked.WANBytes, plain.WANBytes)
		}
	}
}
