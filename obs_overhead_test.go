package tetrium

import (
	"bytes"
	"strings"
	"testing"
)

// The observability layer's contract is zero overhead when disabled: a
// run with a nil Observer must allocate what it did before the layer
// existed, because every event construction is guarded behind the
// engine's single `obs != nil` check. Wall-clock benchmarks are too
// noisy for a 2% bound in CI, so the guard asserts on allocation counts,
// which are deterministic for a fixed seed.
//
// The baseline was measured on this exact workload before the obs call
// sites were added. If a legitimate engine change moves it, re-measure
// with a nil observer and update the constant.
const (
	nilObserverBaselineAllocs = 62585
	nilObserverAllocSlack     = 1.02
)

func nilObserverWorkload() Options {
	c := Sim50(1)
	return Options{
		Cluster:   c,
		Jobs:      GenerateTrace(TraceProduction, c, 4, 1),
		Scheduler: SchedulerTetrium,
	}
}

func TestNilObserverAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector changes allocation counts")
	}
	opts := nilObserverWorkload()
	allocs := testing.AllocsPerRun(3, func() {
		if _, err := Simulate(opts); err != nil {
			t.Fatal(err)
		}
	})
	limit := nilObserverBaselineAllocs * nilObserverAllocSlack
	if allocs > limit {
		t.Errorf("nil-observer run allocates %.0f objects, budget %.0f (baseline %d × %.2f): the disabled path must not build events",
			allocs, limit, int(nilObserverBaselineAllocs), nilObserverAllocSlack)
	}
}

// TestObserverPublicAPI exercises the facade wiring end to end: a
// Recorder passed through Options captures the run and all exporters
// produce output.
func TestObserverPublicAPI(t *testing.T) {
	rec := NewRecorder()
	opts := nilObserverWorkload()
	opts.Observer = rec
	res, err := Simulate(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Events()) == 0 {
		t.Fatal("recorder captured no events")
	}

	var jsonl bytes.Buffer
	if err := WriteEventsJSONL(&jsonl, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if jsonl.Len() == 0 || !strings.HasPrefix(jsonl.String(), `{"k":`) {
		t.Errorf("unexpected JSONL head: %.40q", jsonl.String())
	}

	var perfetto bytes.Buffer
	if err := WritePerfettoTrace(&perfetto, rec.Events()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(perfetto.String(), `"traceEvents"`) {
		t.Error("perfetto export missing traceEvents")
	}

	var metricsDump bytes.Buffer
	if _, err := rec.Registry().WriteText(&metricsDump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(metricsDump.String(), "counter   jobs.done") {
		t.Errorf("metrics dump missing jobs.done:\n%.200s", metricsDump.String())
	}

	rep := rec.EstimateReport()
	if len(rep.Stages) == 0 || len(rep.Jobs) != len(res.Jobs) {
		t.Errorf("estimate report covers %d stages / %d jobs, run had %d jobs",
			len(rep.Stages), len(rep.Jobs), len(res.Jobs))
	}
}
