// Package tetrium is a from-scratch reproduction of "Wide-Area Analytics
// with Multiple Resources" (Hung et al., EuroSys 2018): a multi-resource
// (compute slots + WAN bandwidth) task-placement and job-scheduling
// system for data-parallel analytics across heterogeneous
// geo-distributed sites, together with the simulation substrate, the
// baselines it is evaluated against, and the paper's full experiment
// suite.
//
// This package is the public facade. A minimal session looks like:
//
//	cl := tetrium.NewCluster([]tetrium.Site{
//		{Name: "us-west", Slots: 16, UpBW: 1 * tetrium.Gbps, DownBW: 1 * tetrium.Gbps},
//		{Name: "eu",      Slots: 8,  UpBW: 500 * tetrium.Mbps, DownBW: 500 * tetrium.Mbps},
//	})
//	jobs := tetrium.GenerateTrace(tetrium.TraceTPCDS, cl, 20, 1)
//	res, err := tetrium.Simulate(tetrium.Options{
//		Cluster:   cl,
//		Jobs:      jobs,
//		Scheduler: tetrium.SchedulerTetrium,
//	})
//
// Lower-level building blocks (the placement LPs, the event simulator,
// the fluid-flow WAN model, the LP solver) live under internal/ and are
// exercised through this API, the example programs under examples/, and
// the experiment harness in cmd/tetrium-bench.
package tetrium

import (
	"fmt"
	"io"

	"tetrium/internal/cluster"
	"tetrium/internal/fault"
	"tetrium/internal/obs"
	"tetrium/internal/order"
	"tetrium/internal/place"
	"tetrium/internal/sched"
	"tetrium/internal/sim"
	"tetrium/internal/units"
	"tetrium/internal/workload"
)

// Bandwidth and data-size units (bytes and bytes/sec).
const (
	KB = units.KB
	MB = units.MB
	GB = units.GB
	TB = units.TB

	Mbps = units.Mbps
	Gbps = units.Gbps
	MBps = units.MBps
	GBps = units.GBps
)

// Site describes one geo-distributed location.
type Site = cluster.Site

// Cluster is a set of sites with heterogeneous capacities.
type Cluster = cluster.Cluster

// Job is a DAG of map/reduce stages with parallel tasks.
type Job = workload.Job

// Result carries per-job response times, WAN usage and scheduler
// telemetry for a simulation run.
type Result = sim.Result

// JobResult is one job's outcome within a Result.
type JobResult = sim.JobResult

// Drop injects a runtime capacity reduction at a site (§4.2).
type Drop = sim.Drop

// Timeline is the per-task event log captured when
// Options.RecordTimeline is set; TaskEvent is one entry.
type (
	Timeline  = sim.Timeline
	TaskEvent = sim.TaskEvent
)

// Observability (internal/obs): set Options.Observer to receive the
// run's structured event trace. Recorder is the standard observer —
// it retains events for the JSONL/Perfetto exporters, aggregates a
// metrics registry, and joins LP estimates against realized stage
// times (EstimateReport, the Fig. 12 error axis).
type (
	// Observer receives every simulation event; nil disables tracing
	// at zero cost.
	Observer = obs.Observer
	// ObsEvent is one typed event of the trace.
	ObsEvent = obs.Event
	// Recorder is the standard Observer implementation.
	Recorder = obs.Recorder
	// Registry is the recorder's metrics store.
	Registry = obs.Registry
	// EstimateReport joins LP-estimated against realized stage times.
	EstimateReport = obs.EstimateReport
)

// NewRecorder returns an empty Recorder to pass as Options.Observer.
func NewRecorder() *Recorder { return obs.NewRecorder() }

// WriteEventsJSONL writes a recorded event stream as JSON Lines; the
// output is byte-identical across same-seed runs.
func WriteEventsJSONL(w io.Writer, events []ObsEvent) error {
	return obs.WriteJSONL(w, events)
}

// WritePerfettoTrace writes a recorded event stream as
// Chrome/Perfetto trace_event JSON (load it at ui.perfetto.dev).
func WritePerfettoTrace(w io.Writer, events []ObsEvent) error {
	return obs.WritePerfetto(w, events)
}

// NewCluster builds a cluster from sites. It panics on negative
// capacities.
func NewCluster(sites []Site) *Cluster { return cluster.New(sites) }

// Preset clusters mirroring the paper's deployments.
var (
	// PaperExampleCluster is the exact 3-site setup of Fig. 4.
	PaperExampleCluster = cluster.PaperExample
	// EC2EightRegions mirrors the paper's 8-region EC2 deployment.
	EC2EightRegions = cluster.EC2EightRegions
	// Sim50 is the paper's 50-site trace-driven simulation setting.
	Sim50 = cluster.Sim50
)

// Scheduler selects the end-to-end scheduling system to run.
type Scheduler int

// Schedulers. SchedulerTetrium is the paper's system; the rest are the
// baselines of §6.1.
const (
	// SchedulerTetrium: compute+network-aware LP placement (§3) with
	// SRPT job scheduling (§4.1).
	SchedulerTetrium Scheduler = iota
	// SchedulerIridium: shuffle-optimized reduce placement, site-local
	// maps, fair job scheduling (Pu et al., SIGCOMM '15).
	SchedulerIridium
	// SchedulerInPlace: Spark-default site locality with fair sharing.
	SchedulerInPlace
	// SchedulerCentralized: aggregate all input at the most powerful
	// site and run everything there.
	SchedulerCentralized
	// SchedulerTetris: multi-resource packing with pre-configured task
	// demands (Grandl et al., SIGCOMM '14).
	SchedulerTetris
)

// Schedulers returns every scheduler in declaration order — handy for
// iterating comparisons and for building CLI usage strings.
func Schedulers() []Scheduler {
	return []Scheduler{
		SchedulerTetrium, SchedulerIridium, SchedulerInPlace,
		SchedulerCentralized, SchedulerTetris,
	}
}

// SchedulerNames returns the canonical names accepted by ParseScheduler.
func SchedulerNames() []string {
	all := Schedulers()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.String()
	}
	return names
}

// ParseScheduler is the inverse of Scheduler.String: it maps a
// command-line name ("tetrium", "iridium", "in-place", "centralized",
// "tetris") to the Scheduler constant. "inplace" is accepted as an alias
// for "in-place" for flag-typing convenience.
func ParseScheduler(name string) (Scheduler, error) {
	if name == "inplace" {
		return SchedulerInPlace, nil
	}
	for _, s := range Schedulers() {
		if name == s.String() {
			return s, nil
		}
	}
	return 0, fmt.Errorf("tetrium: unknown scheduler %q (want one of %v)", name, SchedulerNames())
}

func (s Scheduler) String() string {
	switch s {
	case SchedulerTetrium:
		return "tetrium"
	case SchedulerIridium:
		return "iridium"
	case SchedulerInPlace:
		return "in-place"
	case SchedulerCentralized:
		return "centralized"
	case SchedulerTetris:
		return "tetris"
	default:
		return fmt.Sprintf("Scheduler(%d)", int(s))
	}
}

// TraceKind selects a synthetic workload family (§6.1).
type TraceKind int

// Trace kinds.
const (
	// TraceTPCDS: long chains of CPU/IO-heavy stages (6–16).
	TraceTPCDS TraceKind = iota
	// TraceBigData: short scan/join/aggregate queries (2–5 stages).
	TraceBigData
	// TraceProduction: heavy-tailed mix with Poisson arrivals.
	TraceProduction
)

// GenerateTrace produces a deterministic synthetic trace of n jobs whose
// input partitions live on the given cluster's sites.
func GenerateTrace(kind TraceKind, c *Cluster, n int, seed int64) []*Job {
	return GenerateTraceOpts(kind, c, n, seed, TraceOptions{})
}

// TraceOptions enables the §8 extensions in generated traces.
type TraceOptions struct {
	// ReplicaCount stores each map partition at this many extra sites
	// (HDFS-style replication); tasks read from whichever replica is
	// cheapest (§8 replica selection).
	ReplicaCount int
	// StragglerProb / StragglerFactor inject stragglers: each task
	// independently runs StragglerFactor× longer with the given
	// probability (pair with Options.Speculation).
	StragglerProb   float64
	StragglerFactor float64
}

// GenerateTraceOpts is GenerateTrace with §8 extension knobs.
func GenerateTraceOpts(kind TraceKind, c *Cluster, n int, seed int64, topts TraceOptions) []*Job {
	var cfg workload.GenConfig
	switch kind {
	case TraceBigData:
		cfg = workload.BigData(c.N(), n, seed)
	case TraceProduction:
		cfg = workload.ProdTrace(c.N(), n, seed)
	default:
		cfg = workload.TPCDS(c.N(), n, seed)
	}
	cfg.ReplicaCount = topts.ReplicaCount
	cfg.StragglerProb = topts.StragglerProb
	cfg.StragglerFactor = topts.StragglerFactor
	return workload.Generate(cfg)
}

// AddReplicas returns a deep copy of jobs in which every map-task
// partition gains count replica sites (§8). Unlike setting
// TraceOptions.ReplicaCount at generation time, this leaves every other
// aspect of an existing trace untouched — use it for with/without
// ablations.
func AddReplicas(jobs []*Job, c *Cluster, count int, seed int64) []*Job {
	return workload.AddReplicas(jobs, c.N(), count, seed)
}

// Options configures Simulate.
type Options struct {
	Cluster   *Cluster
	Jobs      []*Job
	Scheduler Scheduler

	// Rho is the WAN-budget knob ρ of §4.3 (0 = minimize WAN usage,
	// 1 = minimize response time). Values outside [0,1] clamp; the zero
	// value means 1 unless RhoSet is true.
	Rho    float64
	RhoSet bool

	// Eps is the fairness knob ε of §4.4 (0 = complete fairness,
	// 1 = pure SRPT). The zero value means 1 unless EpsSet is true.
	Eps    float64
	EpsSet bool

	// Seed drives randomized tie-breaking.
	Seed int64

	// Drops injects runtime capacity losses; UpdateK bounds how many
	// sites a placement may change in response (§4.2, 0 = all).
	Drops   []Drop
	UpdateK int

	// FaultSpec, when non-empty, drives the run from the internal/fault
	// injector: site crash/rejoin, link degradation/partition, task
	// stragglers, solver stalls — e.g.
	// "crash@10s:site=1,dur=30s;straggle:p=0.05,x=4". FaultSeed seeds
	// the injector's own RNG (straggler lottery) so a (spec, seed) pair
	// reproduces exactly.
	FaultSpec string
	FaultSeed int64

	// BatchWindow batches slot releases into scheduling instances (§5);
	// 0 schedules immediately on every event.
	BatchWindow float64

	// Speculation launches redundant copies of straggling tasks (§8);
	// SpecThreshold is the elapsed-time multiple of the stage's
	// estimated task duration that triggers a copy (default 2).
	Speculation   bool
	SpecThreshold float64

	// RecordTimeline captures a per-task event log in Result.Timeline
	// (launch / compute start / finish, per site) for schedule
	// debugging.
	RecordTimeline bool

	// Observer, when non-nil, receives the run's structured event
	// trace: scheduling instances, placement decisions with LP
	// estimates, task lifecycle, WAN flows, and drops. Use
	// NewRecorder() for the standard implementation. Nil costs
	// nothing on the simulator's hot paths.
	Observer Observer

	// Check runs the simulation under the internal verification layer:
	// every LP solve behind a Tetrium/Iridium placement is certified
	// (primal feasibility, non-negativity, an optimality bound), every
	// placement is validated against the paper's Eq. 5 / Eq. 10
	// conservation laws, and the simulator audits WAN byte
	// conservation, per-site slot occupancy, and event-time
	// monotonicity throughout the run. Violations surface as an error
	// from Simulate after the run completes. Intended for debugging and
	// CI; the checks cost nothing when false.
	Check bool
}

// Simulate runs the jobs on the cluster under the chosen scheduler and
// returns per-job results.
func Simulate(o Options) (*Result, error) {
	cfg, err := buildConfig(o)
	if err != nil {
		return nil, err
	}
	return sim.Run(cfg)
}

// SimulateIsolated runs a single job alone under the same configuration
// and returns its response time — the slowdown denominator.
func SimulateIsolated(o Options, job *Job) (float64, error) {
	cfg, err := buildConfig(o)
	if err != nil {
		return 0, err
	}
	return sim.RunIsolated(cfg, job)
}

func buildConfig(o Options) (sim.Config, error) {
	if o.Cluster == nil {
		return sim.Config{}, fmt.Errorf("tetrium: Options.Cluster is required")
	}
	rho := 1.0
	if o.RhoSet {
		rho = o.Rho
	}
	eps := 1.0
	if o.EpsSet {
		eps = o.Eps
	}
	cfg := sim.Config{
		Cluster:        o.Cluster,
		Jobs:           o.Jobs,
		MapOrder:       order.RemoteFirstSpread,
		ReduceOrder:    order.LongestFirst,
		Rho:            rho,
		Eps:            eps,
		Seed:           o.Seed,
		Drops:          o.Drops,
		UpdateK:        o.UpdateK,
		BatchWindow:    o.BatchWindow,
		Speculation:    o.Speculation,
		SpecThreshold:  o.SpecThreshold,
		RecordTimeline: o.RecordTimeline,
		Observer:       o.Observer,
		Check:          o.Check,
	}
	if o.FaultSpec != "" {
		inj, err := fault.Parse(o.FaultSpec, o.FaultSeed)
		if err != nil {
			return sim.Config{}, err
		}
		cfg.Faults = inj
	}
	placer, policy, err := plannerFor(o.Scheduler, o.Cluster.N(), o.Check)
	if err != nil {
		return sim.Config{}, err
	}
	cfg.Placer = placer
	cfg.Policy = policy
	return cfg, nil
}

// plannerFor maps a Scheduler to its placement algorithm and job-ordering
// policy — the single source of truth shared by Simulate and NewEngine.
func plannerFor(s Scheduler, n int, check bool) (place.Placer, sched.Policy, error) {
	switch s {
	case SchedulerTetrium:
		return tetriumPlacer(n, check), sched.SRPT, nil
	case SchedulerIridium:
		return place.Iridium{Check: check}, sched.Fair, nil
	case SchedulerInPlace:
		return place.InPlace{}, sched.Fair, nil
	case SchedulerCentralized:
		return place.NewCentralized(), sched.Fair, nil
	case SchedulerTetris:
		return place.Tetris{}, sched.SRPT, nil
	default:
		return nil, 0, fmt.Errorf("tetrium: unknown scheduler %v", s)
	}
}

// tetriumPlacer restricts the map LP's candidate destinations at large
// site counts (see place.Tetrium.MaxDest).
func tetriumPlacer(n int, check bool) place.Placer {
	if n > 16 {
		return place.Tetrium{MaxDest: 10, Check: check}
	}
	return place.Tetrium{Check: check}
}

// PlaceJob computes Tetrium's placement for the first map stage of a job
// on an idle cluster and returns the estimated stage time plus the
// per-site task counts — a convenient way to inspect the paper's §3.1 LP
// without running a simulation.
func PlaceJob(c *Cluster, job *Job) (estSeconds float64, tasksBySite []int, err error) {
	if job == nil || job.NumStages() == 0 {
		return 0, nil, fmt.Errorf("tetrium: empty job")
	}
	st := job.Stages[0]
	if st.Kind != workload.MapStage {
		return 0, nil, fmt.Errorf("tetrium: job's first stage is not a map stage")
	}
	res := place.Resources{Slots: c.Slots(), UpBW: c.UpBW(), DownBW: c.DownBW()}
	mp, err := tetriumPlacer(c.N(), false).PlaceMap(res, place.MapRequest{
		InputBySite: st.InputBySite(c.N()),
		NumTasks:    st.NumTasks(),
		TaskCompute: st.EstCompute,
		WANBudget:   -1,
	})
	if err != nil {
		return 0, nil, err
	}
	tasksBySite = make([]int, c.N())
	for x := range mp.Tasks {
		for y, cnt := range mp.Tasks[x] {
			tasksBySite[y] += cnt
		}
	}
	return mp.EstTime(), tasksBySite, nil
}
